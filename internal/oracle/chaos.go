package oracle

import (
	"errors"
	"fmt"
	"time"

	"nomap/internal/chaos"
	"nomap/internal/governor"
	"nomap/internal/pool"
	"nomap/internal/vm"
)

// This file is the chaos analogue of the site sweep: where Sweep enumerates
// every injectable abort site and asserts differential correctness, the
// chaos sweep enumerates every registered serving-layer fault point
// (panic, compile-fail, slow-isolate, snapshot-corrupt) under every
// architecture's pool configuration and asserts the resilience invariants —
// zero lost or duplicated responses, per-class error counts matching the
// fault schedule, successful responses byte-identical to an undisturbed
// pool, and convergence back to a healthy fleet once the faults stop.

// ChaosConfig controls a chaos sweep.
type ChaosConfig struct {
	// Archs lists the pool configurations to sweep (default: all six).
	Archs []vm.Arch
	// Seed labels the fault plans and the pools' resilience policies.
	Seed int64
	// Workers sizes the concurrent phase's pool (default 4).
	Workers int
	// AsyncCompile runs the sweep with tier-up compilation moved onto the
	// pools' background compile queue. The resilience invariants are
	// tier-independent, so every assertion holds unchanged; the sweep only
	// additionally drains the queue before checking plan exhaustion, since
	// compile-fail faults now fire on rehearsal isolates.
	AsyncCompile bool
}

// DefaultChaosConfig sweeps every fault point under all six configurations.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{Archs: vm.AllArchs, Seed: 1, Workers: 4}
}

// ChaosFailure is one violated resilience invariant.
type ChaosFailure struct {
	Arch   vm.Arch
	Phase  string // "serial" | "load" | "converge"
	Kind   string // "lost-response" | "divergence" | "error-class" | "fault-unfired" | "not-healthy"
	Detail string
}

func (f ChaosFailure) String() string {
	return fmt.Sprintf("[%s] %s: %s: %s", f.Arch, f.Phase, f.Kind, f.Detail)
}

// ChaosArchReport summarizes one configuration's chaos run.
type ChaosArchReport struct {
	Arch      vm.Arch
	Requests  int   // requests driven across both phases
	Faults    int64 // chaos faults fired
	Crashes   int64 // panics contained
	Recovered bool  // fleet healthy after the convergence phase
}

// ChaosReport is the outcome of a chaos sweep.
type ChaosReport struct {
	Archs    []ChaosArchReport
	Failures []ChaosFailure
}

// OK reports a fully clean sweep.
func (r *ChaosReport) OK() bool { return len(r.Failures) == 0 }

// chaosProgram tiers up quickly and deterministically; every request uses
// the same (program, arg), so every successful response must be
// byte-identical to the reference.
const chaosProgram = `
var o = {acc: 0};
function run(n) {
  var s = 0;
  for (var i = 0; i < 120; i++) {
    s = (s + i * n) | 0;
    o.acc = (o.acc + 1) | 0;
  }
  return s + o.acc;
}
`

const chaosCalls = 12 // ≥ SnapshotMinCalls, so the snapshot path is exercised

// referenceResults serves the canonical request once on an undisturbed pool.
func referenceResults(arch vm.Arch, seed int64) ([]string, error) {
	cfg := vm.DefaultConfig()
	cfg.Arch = arch
	p := pool.New(pool.Config{Workers: 1, VM: cfg,
		Resilience: governor.ResiliencePolicy{Seed: seed}})
	defer p.Close()
	resp := p.Do(pool.Request{Source: chaosProgram, Calls: chaosCalls, Arg: 3})
	if resp.Err != nil {
		return nil, resp.Err
	}
	return resp.Results, nil
}

// ChaosSweep runs the fault-point enumeration for each configuration in two
// phases: a serial phase (one worker) whose per-class failure counts are
// exactly predictable from the plan, and a load phase (several workers, a
// scattered plan) where the schedule-independent invariants must hold, then
// a clean convergence tail that must return the fleet to full health.
func ChaosSweep(cfg ChaosConfig) *ChaosReport {
	if len(cfg.Archs) == 0 {
		cfg.Archs = vm.AllArchs
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	rep := &ChaosReport{}
	for _, arch := range cfg.Archs {
		ar := ChaosArchReport{Arch: arch}
		want, err := referenceResults(arch, cfg.Seed)
		if err != nil {
			rep.Failures = append(rep.Failures, ChaosFailure{
				Arch: arch, Phase: "serial", Kind: "divergence",
				Detail: fmt.Sprintf("reference run failed: %v", err)})
			continue
		}
		rep.Failures = append(rep.Failures, chaosSerial(arch, cfg.Seed, cfg.AsyncCompile, want, &ar)...)
		rep.Failures = append(rep.Failures, chaosLoad(arch, cfg.Seed, cfg.Workers, cfg.AsyncCompile, want, &ar)...)
		rep.Archs = append(rep.Archs, ar)
	}
	return rep
}

// chaosSerial drives one worker through a plan covering every fault kind at
// hand-placed occurrences, so the per-class outcome of every request is
// exactly predictable.
// drainCompiles waits for the background compile queue to finish every job
// offered so far. Offers happen synchronously inside serve attempts, so once
// the driver's requests have all returned, jobs-vs-done converging means the
// rehearsals (and any compile-fail faults they eat) are complete.
func drainCompiles(p *pool.Pool) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := p.Stats()
		if st.CompileJobs == st.CompileDone {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func chaosSerial(arch vm.Arch, seed int64, async bool, want []string, ar *ChaosArchReport) []ChaosFailure {
	var fails []ChaosFailure
	fail := func(kind, detail string, args ...any) {
		fails = append(fails, ChaosFailure{Arch: arch, Phase: "serial", Kind: kind,
			Detail: fmt.Sprintf(detail, args...)})
	}
	vcfg := vm.DefaultConfig()
	vcfg.Arch = arch
	// The schedule, in panic/slow occurrence numbers (one arming per serve
	// attempt): req1 fills the caches and saves the snapshot (compile-fail@1
	// degrades its first fill to the baseline fallback, invisibly); req2's
	// first attempt hits snapshot-corrupt@1 (served cold) AND panic@2
	// (contained, retried at occurrence 3, which is clean); req4 (occurrence
	// 5) wedges and dies with the watchdog; everything else is clean.
	plan := chaos.NewPlan(seed,
		chaos.At(chaos.KindCompileFail, 1),
		chaos.At(chaos.KindSnapshotCorrupt, 1),
		chaos.At(chaos.KindPanic, 2),
		chaos.At(chaos.KindSlowIsolate, 5),
	)
	p := pool.New(pool.Config{
		Workers: 1, VM: vcfg, Chaos: plan, AsyncCompile: async,
		Resilience: governor.ResiliencePolicy{Seed: seed},
	})
	defer p.Close()

	const requests = 8
	deadlines := 0
	for i := 0; i < requests; i++ {
		resp := p.Do(pool.Request{Source: chaosProgram, Calls: chaosCalls, Arg: 3})
		ar.Requests++
		if resp.Err != nil {
			if errors.Is(resp.Err, pool.ErrDeadline) {
				deadlines++
				continue
			}
			fail("error-class", "request %d: unexpected failure %v", i, resp.Err)
			continue
		}
		if len(resp.Results) != len(want) {
			fail("divergence", "request %d: %d results, want %d", i, len(resp.Results), len(want))
			continue
		}
		for j := range want {
			if resp.Results[j] != want[j] {
				fail("divergence", "request %d call %d: %q != %q", i, j, resp.Results[j], want[j])
				break
			}
		}
	}
	if async {
		drainCompiles(p)
	}
	st := p.Stats()
	ar.Faults += plan.Fired(chaos.KindPanic) + plan.Fired(chaos.KindCompileFail) +
		plan.Fired(chaos.KindSlowIsolate) + plan.Fired(chaos.KindSnapshotCorrupt)
	ar.Crashes += st.Crashes
	if !plan.Exhausted() {
		fail("fault-unfired", "plan not exhausted: %s (fired panic=%d compile=%d slow=%d snap=%d)",
			plan, plan.Fired(chaos.KindPanic), plan.Fired(chaos.KindCompileFail),
			plan.Fired(chaos.KindSlowIsolate), plan.Fired(chaos.KindSnapshotCorrupt))
	}
	// Exact per-class bookkeeping: one watchdog deadline, everything else
	// recovered invisibly (the crash retried, the corrupt snapshot served
	// cold, the compile fault fell back to baseline).
	if deadlines != 1 || st.Failed != 1 || st.FailedBy[pool.ClassDeadline] != 1 {
		fail("error-class", "deadlines=%d failed=%d breakdown=%v, want exactly one deadline",
			deadlines, st.Failed, st.FailedBy)
	}
	if st.Completed != requests-1 {
		fail("lost-response", "completed=%d of %d (one deadline expected)", st.Completed, requests)
	}
	if st.Crashes != 1 || st.Replacements != 1 || st.Retries != 1 || st.SnapshotRejects != 1 {
		fail("error-class", "crashes=%d replacements=%d retries=%d snapshotRejects=%d, want 1/1/1/1",
			st.Crashes, st.Replacements, st.Retries, st.SnapshotRejects)
	}
	if st.Health.Degraded || st.Health.Shedding {
		fail("not-healthy", "fleet degraded after serial phase: %+v", st.Health)
	}
	return fails
}

// chaosLoad drives a multi-worker pool through a scattered plan with enough
// panics to trip the degradation ladder, asserting only the
// schedule-independent invariants, then a clean tail that must re-promote
// the fleet to full health.
func chaosLoad(arch vm.Arch, seed int64, workers int, async bool, want []string, ar *ChaosArchReport) []ChaosFailure {
	var fails []ChaosFailure
	fail := func(phase, kind, detail string, args ...any) {
		fails = append(fails, ChaosFailure{Arch: arch, Phase: phase, Kind: kind,
			Detail: fmt.Sprintf(detail, args...)})
	}
	vcfg := vm.DefaultConfig()
	vcfg.Arch = arch
	plan := chaos.NewPlan(seed,
		chaos.At(chaos.KindPanic, 2), chaos.At(chaos.KindPanic, 5),
		chaos.At(chaos.KindPanic, 8), chaos.At(chaos.KindPanic, 11),
		chaos.At(chaos.KindPanic, 14),
		chaos.At(chaos.KindSlowIsolate, 4), chaos.At(chaos.KindSlowIsolate, 9),
		chaos.At(chaos.KindCompileFail, 1),
		chaos.At(chaos.KindSnapshotCorrupt, 2),
	)
	p := pool.New(pool.Config{
		Workers: workers, QueueDepth: 64, VM: vcfg, Chaos: plan, AsyncCompile: async,
		Resilience: governor.ResiliencePolicy{
			// The five same-fingerprint chaos crashes must not retire the
			// program: this phase tests the ladder, not the ledger.
			RetireAfterCrashes: 100,
			Seed:               seed,
		},
	})
	defer p.Close()

	const loadRequests = 24
	responses := 0
	chans := make([]<-chan pool.Response, 0, loadRequests)
	for i := 0; i < loadRequests; i++ {
		ch, err := p.Submit(pool.Request{Source: chaosProgram, Calls: chaosCalls, Arg: 3})
		if err != nil {
			fail("load", "lost-response", "submit %d rejected: %v", i, err)
			continue
		}
		chans = append(chans, ch)
	}
	for i, ch := range chans {
		resp, ok := <-ch
		if !ok {
			fail("load", "lost-response", "response channel %d closed without a response", i)
			continue
		}
		responses++
		ar.Requests++
		if resp.Err != nil {
			// Under load, which request eats which fault is
			// schedule-dependent, but the failure class must be one the
			// plan can produce.
			switch pool.Classify(resp.Err) {
			case pool.ClassDeadline, pool.ClassCrash, pool.ClassRetryBudget, pool.ClassDegraded:
			default:
				fail("load", "error-class", "request %d: class %q (%v)", i, pool.Classify(resp.Err), resp.Err)
			}
			continue
		}
		if len(resp.Results) != len(want) {
			fail("load", "divergence", "request %d: %d results, want %d", i, len(resp.Results), len(want))
			continue
		}
		for j := range want {
			if resp.Results[j] != want[j] {
				fail("load", "divergence", "request %d call %d: %q != %q", i, j, resp.Results[j], want[j])
				break
			}
		}
	}
	if responses != len(chans) {
		fail("load", "lost-response", "%d responses for %d accepted requests", responses, len(chans))
	}

	// Convergence tail: the plan is exhausted (or nearly — wedged armings
	// may lag), traffic is clean, and the ladder must walk back to the
	// ceiling.
	// Worst case the ladder stepped down two rungs (crash faults plus a
	// retry exhaustion): each rung back needs a RepromoteWindow of clean
	// completions plus a probation window, so leave comfortable margin.
	const tail = 64
	for i := 0; i < tail; i++ {
		resp := p.Do(pool.Request{Source: chaosProgram, Calls: chaosCalls, Arg: 3})
		ar.Requests++
		if resp.Err != nil && !errors.Is(resp.Err, pool.ErrDegraded) {
			fail("converge", "error-class", "tail request %d: %v", i, resp.Err)
		}
	}
	if async {
		drainCompiles(p)
	}
	st := p.Stats()
	ar.Faults += plan.Fired(chaos.KindPanic) + plan.Fired(chaos.KindCompileFail) +
		plan.Fired(chaos.KindSlowIsolate) + plan.Fired(chaos.KindSnapshotCorrupt)
	ar.Crashes += st.Crashes
	if !plan.Exhausted() {
		fail("load", "fault-unfired", "plan not exhausted: %s", plan)
	}
	if st.Health.Degraded || st.Health.Shedding {
		fail("converge", "not-healthy", "fleet not recovered: %+v (degradeSteps=%d repromotions=%d)",
			st.Health, st.DegradeSteps, st.Repromotions)
	}
	ar.Recovered = !st.Health.Degraded && !st.Health.Shedding
	// The books must balance exactly: every accepted request produced one
	// response.
	if st.Accepted != st.Completed+st.Failed {
		fail("converge", "lost-response", "accepted=%d completed=%d failed=%d",
			st.Accepted, st.Completed, st.Failed)
	}
	return fails
}
