package oracle

import (
	"nomap/internal/machine"
	"nomap/internal/profile"
	"nomap/internal/vm"
)

// Test-case reduction. A failing generated program is shrunk to a minimal
// reproducer by delta-debugging its chunk lists: array-initialization
// statements and loop-body chunks are deleted in shrinking windows while the
// failure predicate keeps holding. Chunks are self-contained statements, so
// every candidate stays syntactically valid (a deleted ga[i] initializer
// just leaves a hole).

// Reduce shrinks g while pred (the "still fails" check) holds. pred must be
// deterministic; it is re-evaluated for every candidate. The returned spec
// is 1-minimal with respect to chunk deletion: removing any single remaining
// chunk makes the failure disappear.
func Reduce(g *GenSpec, pred func(*GenSpec) bool) *GenSpec {
	cur := g.clone()
	if !pred(cur) {
		return cur // not a failure; nothing to reduce
	}
	for changed := true; changed; {
		changed = false
		next := cur.clone()
		next.ArrInit = reduceList(cur.ArrInit, func(cand []string) bool {
			c := cur.clone()
			c.ArrInit = cand
			return pred(c)
		})
		if len(next.ArrInit) < len(cur.ArrInit) {
			changed = true
			cur = next
		}
		next = cur.clone()
		next.Body = reduceList(cur.Body, func(cand []string) bool {
			c := cur.clone()
			c.Body = cand
			return pred(c)
		})
		if len(next.Body) < len(cur.Body) {
			changed = true
			cur = next
		}
	}
	return cur
}

// reduceList is ddmin-style window deletion: try removing windows of
// decreasing size; any removal that preserves the failure is kept.
func reduceList(items []string, stillFails func([]string) bool) []string {
	cur := append([]string(nil), items...)
	size := len(cur) / 2
	if size < 1 {
		size = 1
	}
	for {
		removed := false
		for start := 0; start+size <= len(cur); {
			cand := append(append([]string(nil), cur[:start]...), cur[start+size:]...)
			if stillFails(cand) {
				cur = cand
				removed = true
			} else {
				start++
			}
		}
		if size == 1 && !removed {
			return cur
		}
		if size > 1 {
			size /= 2
		}
	}
}

// DivergesUnderInjector runs p with the injector installed and reports
// whether the observable behaviour diverges from the interpreter reference
// (and how). Used with NewPlantedBug as the reducer predicate.
func DivergesUnderInjector(p Program, arch vm.Arch, inj machine.Injector) (bool, string) {
	ref := Reference(p)
	if ref.Err != "" {
		return false, ""
	}
	eng := newEngine(arch, profile.TierFTL)
	eng.backend.Machine().SetInjector(inj)
	obs := observe(eng.vm, p)
	d := ref.Diff(obs)
	return d != "", d
}
