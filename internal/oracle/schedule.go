package oracle

import (
	"fmt"

	"nomap/internal/htm"
	"nomap/internal/machine"
	"nomap/internal/vm"
)

// Schedule-sweep oracle for the shared-heap scenario class. The site sweep
// (sweep.go) answers "does an abort at any point of one isolate's execution
// preserve behaviour?"; this sweep answers the concurrent analogue: "does any
// interleaving of the workers — with conflict aborts forced at any shared
// access — leave the shared heap in the single-threaded reference state?"
//
// Three properties make the comparison meaningful:
//
//  1. Shared workloads are final-state commutative by contract (see
//     machine.SharedWorkload), so the reference state is the unique correct
//     outcome of every schedule.
//  2. The scheduled executor is deterministic per seed, so every failure is
//     replayable from (workload, arch, seed, injection).
//  3. Counter RMWs execute as in-transaction load+store pairs, so a broken
//     conflict detector produces lost updates the state diff catches rather
//     than silent near-misses.

// ScheduleConfig controls a schedule sweep.
type ScheduleConfig struct {
	// Archs lists the configurations to sweep (default: all six).
	Archs []vm.Arch
	// Schedules is the number of seeded interleavings per configuration
	// (default 8); seeds are Seed, Seed+1, ....
	Schedules int
	// ConflictSites is how many shared-access indices get a forced conflict
	// abort per configuration (default 4, spread over the access stream:
	// first, last, evenly between). Zero disables; negative forces every
	// access index.
	ConflictSites int
	// CapacityPoints is how many capacity-tracked line indices get a forced
	// capacity overflow per configuration (default 2). Zero disables;
	// negative means every index.
	CapacityPoints int
	// Seed is the base schedule seed.
	Seed int64
	// Configure, when non-nil, is applied to every worker of every run
	// before the sweep's own probes (tests use it to sabotage the conflict
	// domain and prove the oracle notices).
	Configure func(id int, sys *htm.System)
}

// DefaultScheduleConfig sweeps all six configurations with eight schedules,
// four forced-conflict sites, and two forced-capacity points each.
func DefaultScheduleConfig() ScheduleConfig {
	return ScheduleConfig{
		Archs:          vm.AllArchs,
		Schedules:      8,
		ConflictSites:  4,
		CapacityPoints: 2,
		Seed:           1,
	}
}

// ScheduleArchReport summarizes one configuration's schedule sweep.
type ScheduleArchReport struct {
	Arch vm.Arch
	// Runs is the number of scheduled executions performed.
	Runs int
	// AccessSites is the size of the conflict-injection space: the number of
	// conflict-checked line accesses in the recording run.
	AccessSites int
	// CapacitySites is the size of the capacity-injection space.
	CapacitySites int
	// ConflictAborts and FallbackAcquires total the respective counters over
	// every run of this configuration.
	ConflictAborts   int64
	FallbackAcquires int64
}

// ScheduleReport is the outcome of one workload's schedule sweep.
type ScheduleReport struct {
	Workload string
	Archs    []ScheduleArchReport
	Failures []Failure
}

// OK reports a fully clean sweep.
func (r *ScheduleReport) OK() bool { return len(r.Failures) == 0 }

// TotalRuns sums executions across configurations.
func (r *ScheduleReport) TotalRuns() int {
	n := 0
	for _, a := range r.Archs {
		n += a.Runs
	}
	return n
}

// probeShot forces one fault at the target-th probe invocation. One shot is
// shared by every worker of a run, so the target indexes the run's global
// access stream (deterministic under the scheduled executor).
type probeShot struct {
	n      int
	target int // 1-based; <= 0 never fires
	every  bool
	fired  bool
}

func (p *probeShot) probe(write bool, line uint64) bool {
	p.n++
	if p.every || (p.target > 0 && p.n == p.target) {
		p.fired = true
		return true
	}
	return false
}

func composeConfigure(outer, inner func(int, *htm.System)) func(int, *htm.System) {
	if outer == nil {
		return inner
	}
	if inner == nil {
		return outer
	}
	return func(id int, sys *htm.System) {
		outer(id, sys)
		inner(id, sys)
	}
}

// ScheduleSweep runs the workload under every configuration: a pass of
// seeded interleavings, a pass forcing a conflict abort at chosen shared
// accesses, a pass forcing capacity overflows, and an all-conflict storm
// that drives every section down the fallback ladder. Every run's final
// shared-heap state and accumulators are diffed against the single-threaded
// reference, and every run's counters must satisfy the accounting
// invariants (CheckCounters), which partition aborts by cause with no
// unaccounted remainder.
func ScheduleSweep(wl *machine.SharedWorkload, cfg ScheduleConfig) (*ScheduleReport, error) {
	if len(cfg.Archs) == 0 {
		cfg.Archs = vm.AllArchs
	}
	if cfg.Schedules <= 0 {
		cfg.Schedules = 8
	}
	ref, err := machine.RunReference(wl)
	if err != nil {
		return nil, fmt.Errorf("oracle: %s: reference run failed: %v", wl.Name, err)
	}
	rep := &ScheduleReport{Workload: wl.Name}

	for _, arch := range cfg.Archs {
		ar := ScheduleArchReport{Arch: arch}
		fail := func(run, kind, detail string) {
			rep.Failures = append(rep.Failures, Failure{Arch: arch, Run: run, Kind: kind, Detail: detail})
		}
		check := func(run string, res *machine.SharedResult) {
			if res.Snapshot != ref.Snapshot {
				fail(run, "divergence", fmt.Sprintf("shared heap %q, reference %q", res.Snapshot, ref.Snapshot))
			}
			for i := range res.Accs {
				if res.Accs[i] != ref.Accs[i] {
					fail(run, "divergence", fmt.Sprintf("worker %d accumulator %d, reference %d",
						i, res.Accs[i], ref.Accs[i]))
				}
			}
			merged := res.Merged
			if err := CheckCounters(&merged); err != nil {
				fail(run, "counter-invariant", "merged: "+err.Error())
			}
			for i := range res.PerWorker {
				if err := CheckCounters(&res.PerWorker[i]); err != nil {
					fail(run, "counter-invariant", fmt.Sprintf("worker %d: %v", i, err))
				}
			}
			ar.ConflictAborts += res.Merged.TxConflictAborts
			ar.FallbackAcquires += res.Merged.SharedFallbackAcquires
		}
		run := func(name string, seed int64, inner func(int, *htm.System)) *machine.SharedResult {
			res, err := machine.RunScheduled(wl, arch, seed, machine.SharedOptions{
				Configure: composeConfigure(cfg.Configure, inner),
			})
			ar.Runs++
			if err != nil {
				fail(name, "run-error", err.Error())
				return nil
			}
			check(name, res)
			return res
		}

		// Interleaving pass: plain runs under distinct seeded schedules.
		for i := 0; i < cfg.Schedules; i++ {
			run(fmt.Sprintf("schedule#%d", i), cfg.Seed+int64(i), nil)
		}

		if arch.UsesTransactions() {
			// Recording run: size the two injection spaces with counting
			// probes that never fire.
			confRec, capRec := &probeShot{}, &probeShot{}
			run("recording", cfg.Seed, func(id int, sys *htm.System) {
				sys.SetConflictProbe(confRec.probe)
				sys.SetCapacityProbe(capRec.probe)
			})
			ar.AccessSites, ar.CapacitySites = confRec.n, capRec.n

			// Conflict pass: force a conflict abort at chosen points of the
			// access stream; the governor's backoff/fallback ladder must
			// recover to the reference state every time.
			if ar.AccessSites > 0 && cfg.ConflictSites != 0 {
				for _, k := range capacityTargets(ar.AccessSites, cfg.ConflictSites) {
					sh := &probeShot{target: k}
					name := fmt.Sprintf("conflict@%d", k)
					res := run(name, cfg.Seed, func(id int, sys *htm.System) {
						sys.SetConflictProbe(sh.probe)
					})
					if res == nil {
						continue
					}
					if !sh.fired {
						fail(name, "injection-missed", "access index not reached in re-run")
					} else if res.Merged.TxConflictAborts == 0 {
						fail(name, "injection-missed", "forced conflict produced no conflict abort")
					}
				}
			}

			// Capacity pass: force overflows; capacity blame must retreat to
			// the fallback (not spin on backoff) and still converge.
			if ar.CapacitySites > 0 && cfg.CapacityPoints != 0 {
				for _, k := range capacityTargets(ar.CapacitySites, cfg.CapacityPoints) {
					sh := &probeShot{target: k}
					name := fmt.Sprintf("capacity@%d", k)
					res := run(name, cfg.Seed, func(id int, sys *htm.System) {
						sys.SetCapacityProbe(sh.probe)
					})
					if res == nil {
						continue
					}
					if !sh.fired {
						fail(name, "injection-missed", "capacity index not reached in re-run")
					} else if res.Merged.TxCapacityAborts == 0 {
						fail(name, "injection-missed", "forced overflow produced no capacity abort")
					}
				}
			}

			// Storm pass: every transactional access conflicts, driving every
			// section down the full abort → backoff → demotion → fallback →
			// re-promotion ladder. The software path alone must reproduce the
			// reference state.
			storm := &probeShot{every: true}
			res := run("storm", cfg.Seed, func(id int, sys *htm.System) {
				sys.SetConflictProbe(storm.probe)
			})
			if res != nil && res.Merged.SharedFallbackAcquires == 0 {
				fail("storm", "injection-missed", "all-conflict storm never reached the fallback lock")
			}
		}

		rep.Archs = append(rep.Archs, ar)
	}
	return rep, nil
}
