// Package frame defines the single materialized activation-record format
// shared by every tier transfer in the engine. Before it existed the same
// state was encoded three ways: the interpreter's resume frame, the
// machine's stack-map materialization (RecoverState), and the OSR-entry
// hand-off each grew their own {pc, register file} pair. A Frame is all of
// them:
//
//   - OSR exit (deopt/abort): the machine materializes a Frame from a Stack
//     Map Point (or the transaction's recovery entry) and the Baseline
//     interpreter resumes it directly.
//
//   - OSR entry: the interpreter hands its live Frame at a hot loop header
//     to the JIT, which binds the frame's locals to the OSR artifact's
//     entry block and continues in optimized code.
//
// The engine's bytecode is register-based, so Locals subsumes the operand
// stack: every partially evaluated expression lives in a numbered register
// and the register file alone reconstructs the activation.
//
// A Frame also carries accumulated profile deltas (BackEdges) across tier
// transfers, so loop-trip counting stays exact no matter how many times
// execution bounces between tiers mid-loop: the machine counts back edges
// locally (squashing counts from aborted transactions, whose iterations the
// Baseline tier re-executes and re-counts) and the receiving tier folds the
// delta into the function profile.
package frame

import (
	"nomap/internal/bytecode"
	"nomap/internal/value"
)

// Frame is one materialized activation record, positioned at PC with the
// full register file in Locals. It is valid to resume in any bytecode tier
// and to enter optimized code through an OSR-entry artifact compiled for
// Fn at loop header PC.
type Frame struct {
	Fn *bytecode.Function
	PC int
	// Locals is the register file in the one-word NaN-boxed representation —
	// the same representation every tier stores, so tier transfers copy words
	// instead of re-boxing. String/object boxes index the isolate's handle
	// slab (value.Handles).
	Locals []value.Boxed
	Env    *value.Environment

	// BackEdges is the number of loop back edges taken on behalf of this
	// frame that have not yet been folded into the function profile. The
	// tier that next owns the frame adds it to BackEdgeCount and zeroes it.
	BackEdges int64

	// Caller links to the next-outer logical frame when this frame was
	// reconstructed from inlined optimized code: a deopt inside a flattened
	// callee materializes the callee frame plus every caller up to the
	// compiled function's own frame. The resume loop runs this frame to its
	// return, stores the result in Caller.Locals[RetReg], advances Caller
	// past the call instruction (Caller.PC is the call's pc), and resumes
	// the caller. Nil for ordinary single-frame transfers.
	Caller *Frame
	// RetReg is the caller register receiving this frame's result
	// (meaningful only when Caller is non-nil).
	RetReg int
	// Function is the function object this frame executes, set for
	// reconstructed inline frames so the resuming tier can allocate the
	// callee environment; nil otherwise (the resuming caller already knows
	// its own function).
	Function *value.Function
	// InlineIndex is the machine-internal inline-frame slot this frame's
	// back edges accumulate under (0 = the compiled function's root frame);
	// the machine uses it to redistribute surviving back-edge counts across
	// the reconstructed chain on aborts.
	InlineIndex int
}

// New allocates a frame for fn at pc 0 with arguments boxed into the
// parameter registers and everything else undefined (the zero Boxed is +0.0,
// so the fill is explicit).
func New(fn *bytecode.Function, env *value.Environment, args []value.Value, h *value.Handles) *Frame {
	fr := &Frame{Fn: fn, Locals: make([]value.Boxed, fn.NumRegs), Env: env}
	for i := range fr.Locals {
		fr.Locals[i] = value.BoxedUndefined
	}
	n := fn.NumParams
	if len(args) < n {
		n = len(args)
	}
	for i := 0; i < n; i++ {
		fr.Locals[i] = h.Box(args[i])
	}
	return fr
}
