package opt

import "nomap/internal/ir"

// HoistTypeChecks models JavaScriptCore's TypeCheckHoistingPhase (paper
// §III-A1): a DFG-level pass that hoists certain checks on loop-invariant
// values to the loop preheader even in the Base configuration, because at
// this level the compiler understands OSR exits natively and can rewrite
// the relocated check's stack map.
//
// Hoisting legality here is about fact invariance, not code motion across
// SMPs:
//
//   - CheckInt32 / CheckNumber on an invariant value: always hoistable — an
//     SSA value's representation never changes.
//   - CheckArray on an invariant value: hoistable — an object's array-ness
//     is fixed at allocation in this engine.
//   - CheckShape on an invariant object: hoistable only when the loop
//     contains no calls (a callee could transition the shape mid-loop; the
//     paper notes the pass's "conservative analysis" leaves many checks).
//   - CheckBounds and CheckOverflow: never hoisted here — combining those
//     requires transactions (paper §IV-C), which is NoMap's contribution.
//
// A relocated SMP-carrying check receives a fresh stack map valid at the
// preheader (deopting there re-executes the whole loop in Baseline, which
// is correct because the hoisted facts are invariant).
func HoistTypeChecks(f *ir.Func) {
	dom := ir.BuildDom(f)
	loops := ir.FindLoops(f, dom)
	for i := 0; i < len(loops); i++ { // innermost first
		for j := i + 1; j < len(loops); j++ {
			if loops[j].Depth > loops[i].Depth {
				loops[i], loops[j] = loops[j], loops[i]
			}
		}
	}
	for _, l := range loops {
		hoistTypeChecksInLoop(f, l)
	}
}

func hoistTypeChecksInLoop(f *ir.Func, l *ir.Loop) {
	pre := l.Preheader()
	if pre == nil || pre.Kind != ir.BlockPlain || l.Header.EntryState == nil {
		return
	}
	hasCalls := false
	for _, b := range l.BlockList() {
		for _, v := range b.Values {
			if v.Op == ir.OpCallDirect || v.Op == ir.OpCallRuntime {
				hasCalls = true
			}
		}
	}
	// Deduplicate hoisted checks per (op, arg, shape).
	type key struct {
		op    ir.Op
		arg   *ir.Value
		shape uint32
	}
	hoisted := map[key]bool{}
	preMap := ir.ResolveEntryState(l.Header, pre)

	for _, b := range l.BlockList() {
		for i := 0; i < len(b.Values); i++ {
			v := b.Values[i]
			if !v.Op.IsCheck() || len(v.Args) != 1 {
				continue
			}
			if v.Dispatch {
				// Dispatch-tree guards are control-dependent on their chain:
				// hoisting one way's guard would fail it for every other
				// way's receiver.
				continue
			}
			arg := v.Args[0]
			if l.Contains(arg.Block) {
				continue // not invariant
			}
			switch v.Op {
			case ir.OpCheckInt32, ir.OpCheckNumber, ir.OpCheckArray:
				// always hoistable
			case ir.OpCheckShape:
				if hasCalls {
					continue
				}
			default:
				continue
			}
			var sid uint32
			if v.Shape != nil {
				sid = v.Shape.ID
			}
			k := key{op: v.Op, arg: arg, shape: sid}
			b.RemoveValue(v)
			i--
			if hoisted[k] {
				continue // an identical hoisted check already guards this
			}
			hoisted[k] = true
			v.Block = pre
			pre.Values = append(pre.Values, v)
			if v.Deopt != nil {
				// Relocated SMP: deopt state becomes "before the loop". The
				// preheader map's inline frame and caller chain carry over —
				// for a loop inside flattened callee code the relocated
				// check still reconstructs the full logical frame stack.
				v.Deopt = &ir.StackMap{PC: preMap.PC, Entries: preMap.Entries, Inline: preMap.Inline, Caller: preMap.Caller}
			}
		}
	}
}
