package opt

import "nomap/internal/ir"

// PromoteLoopStores performs scalar promotion of loop-carried memory slots —
// the paper's motivating example (Figure 4(d)): a loop that accumulates into
// obj.sum every iteration keeps the accumulator in a register instead, with
// one store after the loop.
//
// The transformation is only legal when the loop contains no barrier: with
// SMPs present, the Baseline tier reads the accumulator from memory on any
// deopt, so the store must stay in the loop (paper §III-B). Inside a
// transaction the SMPs are aborts, the rollback discards partial state, and
// sinking is sound.
//
// Requirements (conservative, matching the common compiled loop shape):
//   - single latch; store's block dominates the latch,
//   - exactly one exit block whose predecessor set lies inside the loop,
//     with the exit edge leaving from the loop header,
//   - the store's object is loop-invariant and is the only store to its
//     slot-offset alias class in the loop,
//   - no barriers (calls / SMPs) anywhere in the loop.
func PromoteLoopStores(f *ir.Func) {
	dom := ir.BuildDom(f)
	loops := ir.FindLoops(f, dom)
	for _, l := range loops {
		promoteLoop(f, dom, l)
	}
}

func promoteLoop(f *ir.Func, dom *ir.DomTree, l *ir.Loop) {
	pre := l.Preheader()
	latches := l.Latches()
	exits := l.Exits()
	if pre == nil || len(latches) != 1 || len(exits) != 1 {
		return
	}
	latch := latches[0]
	exit := exits[0]
	for _, p := range exit.Preds {
		if !l.Contains(p) {
			return
		}
		if p != l.Header {
			return // exits must leave from the header
		}
	}

	// Collect stores and reject loops with barriers.
	type slotKey struct {
		obj *ir.Value
		off int64
	}
	storeCount := map[memKey]int{}
	var stores []*ir.Value
	for _, b := range l.BlockList() {
		for _, v := range b.Values {
			if v.IsBarrier() {
				return
			}
			if v.Op == ir.OpStoreSlot {
				storeCount[memKey{kind: kindSlot, off: v.AuxInt}]++
				stores = append(stores, v)
			}
		}
	}

	for _, st := range stores {
		obj := st.Args[0]
		if l.Contains(obj.Block) {
			continue // object not invariant
		}
		if storeCount[memKey{kind: kindSlot, off: st.AuxInt}] != 1 {
			continue
		}
		if !dom.Dominates(st.Block, latch) {
			continue // conditionally executed store
		}
		// All in-loop loads of this slot must be from the same object value
		// (same SSA value ⇒ same object at runtime) and must execute before
		// the store in each iteration, so they see the iteration-start
		// accumulator value.
		var loads []*ir.Value
		ok := true
		for _, b := range l.BlockList() {
			for pos, v := range b.Values {
				if v.Op == ir.OpLoadSlot && v.AuxInt == st.AuxInt {
					if v.Args[0] != obj {
						ok = false
					}
					if b == st.Block {
						if pos > indexOf(b, st) {
							ok = false
						}
					} else if !dom.Dominates(b, st.Block) {
						ok = false
					}
					loads = append(loads, v)
				}
			}
		}
		if !ok {
			continue
		}
		// The stored value must be available at the latch (dominate it).
		stored := st.Args[1]
		if !dom.Dominates(stored.Block, latch) {
			continue
		}

		// init = load in preheader.
		init := pre.NewValue(ir.OpLoadSlot, ir.TypeGeneric, obj)
		init.AuxInt = st.AuxInt
		init.BCPos = st.BCPos

		// acc = phi(init from preheader, stored from latch) at the header.
		acc := l.Header.InsertValueAt(0, ir.OpPhi, ir.TypeGeneric)
		acc.Args = make([]*ir.Value, len(l.Header.Preds))
		for i, p := range l.Header.Preds {
			if p == pre {
				acc.Args[i] = init
			} else {
				acc.Args[i] = stored
			}
		}
		acc.Type = stored.Type

		// In-loop loads of the slot become the accumulator.
		for _, ld := range loads {
			ir.ReplaceUses(f, ld, acc)
			ld.Block.RemoveValue(ld)
		}
		// Replace the in-loop store with one in the exit block; since exits
		// leave from the header, the live value there is the phi.
		st.Block.RemoveValue(st)
		sunk := exit.InsertValueAt(insertAfterTxBoundary(exit), ir.OpStoreSlot, ir.TypeNone, obj, acc)
		sunk.AuxInt = st.AuxInt
		sunk.BCPos = st.BCPos

		// Only promote one slot per loop per pass invocation: bookkeeping
		// (storeCount, loads) is stale after a rewrite.
		return
	}
}

func indexOf(b *ir.Block, v *ir.Value) int {
	for i, w := range b.Values {
		if w == v {
			return i
		}
	}
	return -1
}

// insertAfterTxBoundary returns the index in exit.Values just before the
// TxEnd (the sunk store must still be inside the transaction); with no TxEnd
// present it returns 0.
func insertAfterTxBoundary(exit *ir.Block) int {
	for i, v := range exit.Values {
		if v.Op == ir.OpTxEnd {
			return i
		}
		if v.Op != ir.OpPhi {
			return i
		}
	}
	return len(exit.Values)
}
