package opt

import "nomap/internal/ir"

// DCE removes dead pure operations and loads. Liveness roots are: stores,
// calls, every check (checks guard semantics even when their instruction
// cost is zero), transaction markers, block controls, and — crucially for
// the paper's register-pressure story — the stack map entries of every
// remaining Stack Map Point. When NoMap converts a check's SMP into an
// abort, its stack map disappears, and values kept alive only for
// deoptimization die here.
func DCE(f *ir.Func) {
	live := map[*ir.Value]bool{}
	var work []*ir.Value
	mark := func(v *ir.Value) {
		if v != nil && !live[v] {
			live[v] = true
			work = append(work, v)
		}
	}

	for _, b := range f.Blocks {
		mark(b.Control)
		for _, v := range b.Values {
			switch {
			case v.Op.IsCheck(), v.Op.IsCall(), v.Op.WritesMemory():
				mark(v)
			}
		}
	}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		for _, a := range v.Args {
			mark(a)
		}
		for sm := v.Deopt; sm != nil; sm = sm.Caller {
			// Inline-frame caller chains keep every logical frame's state
			// alive, not just the innermost map's.
			for _, e := range sm.Entries {
				mark(e.Val)
			}
		}
	}

	for _, b := range f.Blocks {
		kept := b.Values[:0]
		for _, v := range b.Values {
			if live[v] {
				kept = append(kept, v)
			}
		}
		b.Values = kept
		// Entry states may now reference removed values; they are only
		// consumed before optimization, so drop them.
		b.EntryState = nil
	}
}
