package opt

import "nomap/internal/ir"

// SimplifyCFG merges straight-line block chains (a Plain block with a single
// successor that has a single predecessor) and retargets branches whose two
// successors are identical. This models the block layout cleanups LLVM's
// -O2 performs; fewer block transitions mean fewer branch instructions in
// the machine's cost model.
//
// Loop headers' EntryState maps survive merging because a header with a
// back edge always has two predecessors and is never merged into its
// predecessor.
func SimplifyCFG(f *ir.Func) {
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			// Branch with identical arms becomes a plain jump.
			if b.Kind == ir.BlockIf && len(b.Succs) == 2 && b.Succs[0] == b.Succs[1] {
				succ := b.Succs[0]
				// Drop one of the duplicate pred entries, preserving phi
				// argument consistency (both args along the duplicate edges
				// are necessarily identical positions in Preds; keep the
				// first, remove the second).
				k := -1
				for i, p := range succ.Preds {
					if p == b {
						if k >= 0 {
							succ.Preds = append(succ.Preds[:i], succ.Preds[i+1:]...)
							removePhiArg(succ, i)
							break
						}
						k = i
					}
				}
				b.Kind = ir.BlockPlain
				b.Control = nil
				b.Succs = b.Succs[:1]
				changed = true
			}
			// Merge b -> c when the edge is the only way in and out.
			if b.Kind == ir.BlockPlain && len(b.Succs) == 1 {
				c := b.Succs[0]
				if c != b && len(c.Preds) == 1 && c.Preds[0] == b && c != f.Entry {
					mergeInto(f, b, c)
					changed = true
				}
			}
		}
	}
	// Drop unreachable blocks.
	dom := ir.BuildDom(f)
	kept := f.Blocks[:0]
	for _, b := range f.Blocks {
		if dom.Reachable(b) {
			kept = append(kept, b)
		} else {
			// Unlink from successors' pred lists.
			for _, s := range b.Succs {
				for i, p := range s.Preds {
					if p == b {
						s.Preds = append(s.Preds[:i], s.Preds[i+1:]...)
						removePhiArg(s, i)
						break
					}
				}
			}
		}
	}
	f.Blocks = kept
}

// mergeInto appends c's contents to b and rewires edges. c has exactly one
// pred (b), so its phis are trivial single-arg phis; they are replaced by
// their argument.
func mergeInto(f *ir.Func, b, c *ir.Block) {
	for _, v := range c.Values {
		if v.Op == ir.OpPhi {
			if len(v.Args) == 1 {
				ir.ReplaceUses(f, v, v.Args[0])
				continue
			}
		}
		v.Block = b
		b.Values = append(b.Values, v)
	}
	b.Kind = c.Kind
	b.Control = c.Control
	b.Succs = c.Succs
	b.BackEdge = b.BackEdge || c.BackEdge
	if c.BackEdge {
		// The back-edge terminator now ends b; the machine credits a block's
		// back edges to Block.Inline, so the attribution follows it.
		b.Inline = c.Inline
	}
	for _, s := range c.Succs {
		for i, p := range s.Preds {
			if p == c {
				s.Preds[i] = b
			}
		}
	}
	if b.EntryState == nil {
		b.EntryState = c.EntryState
	}
	// Neutralize the absorbed block: it stays in f.Blocks until the
	// unreachable-block sweep, and later pass iterations must not interpret
	// its stale kind against its now-empty successor list.
	c.Kind = ir.BlockPlain
	c.Control = nil
	c.Succs = nil
	c.Preds = nil
	c.Values = nil
}

// removePhiArg deletes argument index i from every phi in b.
func removePhiArg(b *ir.Block, i int) {
	for _, v := range b.Values {
		if v.Op != ir.OpPhi {
			break
		}
		if i < len(v.Args) {
			v.Args = append(v.Args[:i], v.Args[i+1:]...)
		}
	}
}
