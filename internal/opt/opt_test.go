package opt_test

import (
	"testing"

	"nomap/internal/bytecode"
	"nomap/internal/core"
	"nomap/internal/ir"
	"nomap/internal/opt"
	"nomap/internal/profile"
	"nomap/internal/vm"
)

// buildIR compiles src, warms fname in the Baseline tier, and returns
// freshly built (unoptimized) IR plus the profile.
func buildIR(t *testing.T, src, fname string) *ir.Func {
	t.Helper()
	cfg := vm.DefaultConfig()
	cfg.MaxTier = profile.TierBaseline
	m := vm.New(cfg)
	if _, err := m.Run(src); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	fv := m.Globals().Get(fname)
	if !fv.IsCallable() {
		t.Fatalf("global %q is not a function", fname)
	}
	bcFn := fv.Object().Fn.Code.(*bytecode.Function)
	f, err := ir.Build(bcFn, m.ProfileFor(bcFn))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return f
}

func countOps(f *ir.Func) map[ir.Op]int {
	m := map[ir.Op]int{}
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			m[v.Op]++
		}
	}
	return m
}

func countInLoops(t *testing.T, f *ir.Func, op ir.Op) int {
	t.Helper()
	dom := ir.BuildDom(f)
	loops := ir.FindLoops(f, dom)
	n := 0
	for _, l := range loops {
		for b := range l.Blocks {
			for _, v := range b.Values {
				if v.Op == op {
					n++
				}
			}
		}
	}
	return n
}

func verify(t *testing.T, f *ir.Func, stage string) {
	t.Helper()
	if err := ir.Verify(f); err != nil {
		t.Fatalf("%s: %v\n%s", stage, err, f)
	}
}

const fig4Src = `
var obj = {values: [], sum: 0};
for (var i = 0; i < 64; i++) obj.values[i] = i;
function accum() {
  obj.sum = 0;
  var len = obj.values.length;
  for (var idx = 0; idx < len; idx++) {
    obj.sum += obj.values[idx];
  }
  return obj.sum;
}
for (var k = 0; k < 40; k++) accum();
var result = obj.sum;
`

// In Base (SMPs everywhere), LICM must NOT hoist loads or checks out of the
// loop; after NoMap converts SMPs to aborts, it must.
func TestLICMBlockedBySMPs(t *testing.T) {
	f := buildIR(t, fig4Src, "accum")
	before := countInLoops(t, f, ir.OpCheckShape)
	opt.GVN(f)
	opt.LICM(f)
	verify(t, f, "base LICM")
	after := countInLoops(t, f, ir.OpCheckShape)
	if after < before {
		t.Errorf("shape checks hoisted across SMPs: %d -> %d", before, after)
	}
}

func TestLICMEnabledByTransactions(t *testing.T) {
	f := buildIR(t, fig4Src, "accum")
	if n := core.FormTransactions(f, core.TxLoopNest); n == 0 {
		t.Fatalf("no transactions formed:\n%s", f)
	}
	verify(t, f, "txform")
	opt.GVN(f)
	opt.LICM(f)
	verify(t, f, "licm")
	if n := countInLoops(t, f, ir.OpCheckShape); n != 0 {
		t.Errorf("%d shape checks remain in the loop after NoMap LICM:\n%s", n, f)
	}
	if n := countInLoops(t, f, ir.OpCheckArray); n != 0 {
		t.Errorf("%d array checks remain in the loop:\n%s", n, f)
	}
}

// Store promotion: the paper's Figure 4(d) — the obj.sum store must leave
// the loop once transactions are in place, and must stay put without them.
func TestStorePromotion(t *testing.T) {
	f := buildIR(t, fig4Src, "accum")
	core.FormTransactions(f, core.TxLoopNest)
	opt.GVN(f)
	opt.LICM(f)
	before := countInLoops(t, f, ir.OpStoreSlot)
	opt.PromoteLoopStores(f)
	verify(t, f, "promote")
	after := countInLoops(t, f, ir.OpStoreSlot)
	if after >= before {
		t.Errorf("store not promoted: %d -> %d in-loop slot stores\n%s", before, after, f)
	}
}

func TestStorePromotionBlockedWithoutTx(t *testing.T) {
	f := buildIR(t, fig4Src, "accum")
	opt.GVN(f)
	opt.LICM(f)
	before := countInLoops(t, f, ir.OpStoreSlot)
	opt.PromoteLoopStores(f)
	verify(t, f, "promote-base")
	after := countInLoops(t, f, ir.OpStoreSlot)
	if after != before {
		t.Errorf("store promotion must be illegal across SMPs: %d -> %d", before, after)
	}
}

// GVN must fold constants and deduplicate pure ops.
func TestGVNConstFold(t *testing.T) {
	src := `
function calc(x) {
  var a = 3 + 4;       // folds to 7
  var b = 3 + 4;       // same value number
  return x + a + b;
}
for (var k = 0; k < 40; k++) calc(k);
var result = calc(1);
`
	f := buildIR(t, src, "calc")
	opt.GVN(f)
	verify(t, f, "gvn")
	ops := countOps(f)
	if ops[ir.OpAddInt] > 2 {
		t.Errorf("expected constant folding + CSE to leave <=2 adds, got %d:\n%s", ops[ir.OpAddInt], f)
	}
}

// DCE must drop values kept alive only by stack maps once NoMap removes
// those stack maps.
func TestDCEWithStackMaps(t *testing.T) {
	f := buildIR(t, fig4Src, "accum")
	opt.GVN(f)
	opt.DCE(f)
	verify(t, f, "dce-base")
	baseVals := countLoopVals(t, f)

	g := buildIR(t, fig4Src, "accum")
	core.FormTransactions(g, core.TxLoopNest)
	opt.GVN(g)
	opt.LICM(g)
	opt.PromoteLoopStores(g)
	opt.GVN(g)
	opt.DCE(g)
	verify(t, g, "dce-nomap")
	nomapVals := countLoopVals(t, g)
	if nomapVals >= baseVals {
		t.Errorf("NoMap pipeline should shrink the loop body: base=%d nomap=%d", baseVals, nomapVals)
	}
}

// countLoopVals counts IR values inside natural loops — the region whose
// stack maps pin values in the Base pipeline. (Whole-function totals are not
// a fair proxy: NoMap moves hoisted values into the preheader and adds
// txbegin/txend, which offset the loop-body shrink in a raw count.)
func countLoopVals(t *testing.T, f *ir.Func) int {
	t.Helper()
	dom := ir.BuildDom(f)
	loops := ir.FindLoops(f, dom)
	n := 0
	for _, l := range loops {
		for b := range l.Blocks {
			n += len(b.Values)
		}
	}
	return n
}

// Checks are never deleted by DCE even when Free.
func TestDCEKeepsChecks(t *testing.T) {
	f := buildIR(t, fig4Src, "accum")
	core.FormTransactions(f, core.TxLoopNest)
	core.RemoveAllChecks(f)
	opt.DCE(f)
	verify(t, f, "dce-free-checks")
	found := false
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			if v.Op.IsCheck() && v.Free {
				found = true
			}
		}
	}
	if !found {
		t.Error("free checks must survive DCE (they still guard semantics)")
	}
}

// LICM of pure arithmetic works even in Base (moving pure ops across SMPs
// is legal; only memory is pinned).
func TestLICMPureOpsInBase(t *testing.T) {
	src := `
function horner(n, c) {
  var s = 0;
  var scale = c * 3;        // loop-invariant pure computation
  for (var i = 0; i < n; i++) {
    s = s + scale;
  }
  return s;
}
for (var k = 0; k < 40; k++) horner(16, k);
var result = horner(16, 2);
`
	f := buildIR(t, src, "horner")
	opt.GVN(f)
	opt.LICM(f)
	verify(t, f, "licm-pure")
	// scale's multiply must be outside the loop (it was already: compiled
	// before the loop). The accumulating add must remain inside.
	if n := countInLoops(t, f, ir.OpAddInt); n == 0 {
		t.Errorf("loop-carried add must not be hoisted:\n%s", f)
	}
}

func TestSimplifyCFGMergesChains(t *testing.T) {
	f := buildIR(t, fig4Src, "accum")
	opt.GVN(f)
	opt.DCE(f)
	before := len(f.Blocks)
	opt.SimplifyCFG(f)
	verify(t, f, "simplifycfg")
	after := len(f.Blocks)
	if after >= before {
		t.Errorf("no blocks merged: %d -> %d", before, after)
	}
	// Loops must survive.
	dom := ir.BuildDom(f)
	if len(ir.FindLoops(f, dom)) != 1 {
		t.Error("loop destroyed by CFG simplification")
	}
}

func TestSimplifyCFGAfterFullNoMapPipeline(t *testing.T) {
	f := buildIR(t, fig4Src, "accum")
	core.FormTransactions(f, core.TxLoopNest)
	opt.GVN(f)
	opt.LICM(f)
	opt.PromoteLoopStores(f)
	core.CombineBoundsChecks(f)
	core.RemoveOverflowChecks(f)
	opt.GVN(f)
	opt.DCE(f)
	opt.SimplifyCFG(f)
	verify(t, f, "full-pipeline+simplify")
	// Transaction markers must survive intact.
	begins, ends := 0, 0
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			if v.Op == ir.OpTxBegin {
				begins++
			}
			if v.Op == ir.OpTxEnd {
				ends++
			}
		}
	}
	if begins == 0 || ends == 0 {
		t.Errorf("tx markers lost: begins=%d ends=%d", begins, ends)
	}
}
