package opt

import (
	"fmt"

	"nomap/internal/ir"
	"nomap/internal/value"
)

// GVN performs global value numbering over pure operations, memory loads,
// and checks, plus constant folding of pure integer/boolean operations.
//
// Loads and heap-reading checks participate only within an unbroken memory
// generation: any write to the same alias class bumps that class, and any
// barrier — an opaque call, a transaction boundary, or an SMP-carrying
// check (paper §III-A3) — bumps every class. Eliminating a dominated
// identical check removes its instructions entirely, which is one of the
// two benefits NoMap unlocks (paper §IV-C).
func GVN(f *ir.Func) {
	dom := ir.BuildDom(f)
	gen := map[memKey]int{}
	allGen := 0
	table := map[string]*ir.Value{}

	keyOf := func(v *ir.Value) (string, bool) {
		pure := v.Op.IsPure() && v.Op != ir.OpPhi && v.Op != ir.OpParam
		load := v.Op.ReadsMemory() && !v.Op.WritesMemory() && !v.Op.IsCall()
		check := v.Op.IsCheck()
		if !pure && !load && !check {
			return "", false
		}
		if check && v.Deopt != nil {
			// An SMP is a barrier and is never deduplicated across itself;
			// conservatively leave SMP-carrying checks alone.
			return "", false
		}
		k := fmt.Sprintf("%d|%d|%q|%g", v.Op, v.AuxInt, v.AuxStr, v.AuxFloat)
		if v.Op == ir.OpConst {
			k += "|" + v.AuxVal.ToStringValue() + "|" + v.AuxVal.Kind().String()
		}
		if v.Shape != nil {
			k += fmt.Sprintf("|s%d", v.Shape.ID)
		}
		if v.Callee != nil {
			k += fmt.Sprintf("|c%p", v.Callee)
		}
		for _, a := range v.Args {
			k += fmt.Sprintf("|v%d", a.ID)
		}
		// Reads incorporate their alias-class generations.
		for _, rk := range readKeys(v) {
			k += fmt.Sprintf("|g%d.%d.%s=%d.%d", rk.kind, rk.off, rk.name, gen[rk], allGen)
		}
		return k, true
	}

	for _, b := range dom.RPO() {
		for i := 0; i < len(b.Values); i++ {
			v := b.Values[i]
			if folded := foldConst(v); folded {
				// Constant-folded in place; fall through to numbering so
				// identical constants merge.
			}
			if v.IsBarrier() {
				allGen++
				continue
			}
			for _, wk := range writeKeys(v) {
				gen[wk]++
			}
			k, ok := keyOf(v)
			if !ok {
				continue
			}
			if prev, hit := table[k]; hit && dom.Dominates(prev.Block, b) && prev != v {
				if v.Op.IsCheck() {
					// A dominating identical check makes this one redundant.
					b.RemoveValue(v)
					i--
					continue
				}
				if v.Type != ir.TypeNone {
					ir.ReplaceUses(f, v, prev)
					b.RemoveValue(v)
					i--
					continue
				}
			}
			table[k] = v
		}
	}
}

// foldConst rewrites v in place into an OpConst when all args are constants
// and the operation folds safely. Returns whether folding happened.
func foldConst(v *ir.Value) bool {
	allConst := len(v.Args) > 0
	for _, a := range v.Args {
		if a.Op != ir.OpConst {
			allConst = false
			break
		}
	}
	if !allConst {
		return false
	}
	setConst := func(val value.Value, t ir.Type) bool {
		v.Op = ir.OpConst
		v.AuxVal = val
		v.Type = t
		v.Args = nil
		v.AuxInt = 0
		v.AuxStr = ""
		return true
	}
	c := func(i int) value.Value { return v.Args[i].AuxVal }
	switch v.Op {
	case ir.OpAddInt, ir.OpSubInt, ir.OpMulInt:
		a, b := int64(c(0).Int32()), int64(c(1).Int32())
		var r int64
		switch v.Op {
		case ir.OpAddInt:
			r = a + b
		case ir.OpSubInt:
			r = a - b
		default:
			r = a * b
			if r == 0 && (a < 0 || b < 0) {
				return false
			}
		}
		if r < -2147483648 || r > 2147483647 {
			return false // would overflow: keep op + its check
		}
		return setConst(value.Int(int32(r)), ir.TypeInt32)
	case ir.OpBitAnd:
		return setConst(value.Int(c(0).Int32()&c(1).Int32()), ir.TypeInt32)
	case ir.OpBitOr:
		return setConst(value.Int(c(0).Int32()|c(1).Int32()), ir.TypeInt32)
	case ir.OpBitXor:
		return setConst(value.Int(c(0).Int32()^c(1).Int32()), ir.TypeInt32)
	case ir.OpShl:
		return setConst(value.Int(c(0).Int32()<<(uint32(c(1).Int32())&31)), ir.TypeInt32)
	case ir.OpShr:
		return setConst(value.Int(c(0).Int32()>>(uint32(c(1).Int32())&31)), ir.TypeInt32)
	case ir.OpCmpInt:
		a, b := c(0).Int32(), c(1).Int32()
		var r bool
		switch ir.Cmp(v.AuxInt) {
		case ir.CmpLT:
			r = a < b
		case ir.CmpLE:
			r = a <= b
		case ir.CmpGT:
			r = a > b
		case ir.CmpGE:
			r = a >= b
		case ir.CmpEQ:
			r = a == b
		case ir.CmpNE:
			r = a != b
		}
		return setConst(value.Boolean(r), ir.TypeBool)
	case ir.OpToBool:
		return setConst(value.Boolean(c(0).ToBoolean()), ir.TypeBool)
	case ir.OpBoolNot:
		return setConst(value.Boolean(!c(0).Bool()), ir.TypeBool)
	case ir.OpIntToDouble:
		return setConst(value.Double(float64(c(0).Int32())), ir.TypeDouble)
	}
	return false
}
