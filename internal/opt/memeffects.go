// Package opt implements the "LLVM-level" optimization pipeline of the FTL
// tier: global value numbering, loop-invariant code motion, loop store
// promotion, and dead code elimination.
//
// Every pass honours the paper's central legality rule (§III-A3): a Stack
// Map Point — a check that can deoptimize, lowered as an opaque patchpoint —
// may read and write all memory, so loads, stores, and checks cannot move
// across it and memory CSE is cut at it. When NoMap converts in-transaction
// SMPs into aborts (§IV-B), those barriers disappear and the same passes
// suddenly find the optimizations the paper reports.
package opt

import "nomap/internal/ir"

// memKey identifies an alias class of the JS heap. Slots are distinguished
// by offset (a store to obj.sum at offset 1 does not disturb obj.values at
// offset 0 — the paper's Figure 4 loop depends on this), globals by name.
type memKey struct {
	kind int
	off  int64
	name string
}

const (
	kindShape = iota
	kindSlot
	kindElems
	kindLength
	kindGlobal
)

// readKeys returns the alias classes v reads, or nil for non-memory ops.
func readKeys(v *ir.Value) []memKey {
	switch v.Op {
	case ir.OpLoadSlot:
		return []memKey{{kind: kindSlot, off: v.AuxInt}}
	case ir.OpLoadElem:
		return []memKey{{kind: kindElems}}
	case ir.OpLoadLength:
		return []memKey{{kind: kindLength}}
	case ir.OpLoadGlobal:
		return []memKey{{kind: kindGlobal, name: v.AuxStr}}
	case ir.OpCheckShape, ir.OpCheckArray, ir.OpHasShape:
		return []memKey{{kind: kindShape}}
	case ir.OpCheckBounds:
		return []memKey{{kind: kindLength}}
	}
	return nil
}

// writeKeys returns the alias classes v writes, or nil. Opaque calls and
// SMPs clobber everything and are handled by the barrier rule instead.
func writeKeys(v *ir.Value) []memKey {
	switch v.Op {
	case ir.OpStoreSlot:
		return []memKey{{kind: kindSlot, off: v.AuxInt}}
	case ir.OpStoreElem:
		// In-bounds speculation holds in committed executions, so element
		// stores do not change the length or shape.
		return []memKey{{kind: kindElems}}
	case ir.OpStoreGlobal:
		return []memKey{{kind: kindGlobal, name: v.AuxStr}}
	case ir.OpTransition:
		// A speculated property add writes the new slot and the shape word.
		return []memKey{{kind: kindShape}, {kind: kindSlot, off: v.AuxInt}}
	}
	return nil
}
