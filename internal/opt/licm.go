package opt

import "nomap/internal/ir"

// LICM hoists loop-invariant values to the loop preheader.
//
// Pure operations hoist whenever their operands are invariant (moving a
// total pure op across an SMP is legal — only its register pressure cost
// changes, which the weights absorb). Loads and abort-checks additionally
// require that the loop contain no barrier — no opaque call and no
// SMP-carrying check (paper §III-A3) — and that the loop not write their
// alias class. SMP-carrying checks themselves never move: relocating a
// deoptimization point would change the Baseline state it must reproduce.
//
// In the Base configuration virtually every loop contains SMPs, so only
// pure arithmetic hoists; once NoMap converts in-transaction SMPs to
// aborts, shape checks, array checks, and invariant loads all leave the
// loop — the paper's enabling effect.
func LICM(f *ir.Func) {
	dom := ir.BuildDom(f)
	loops := ir.FindLoops(f, dom)
	// Innermost first so hoisted values can cascade outward on later calls.
	for i := 0; i < len(loops); i++ {
		for j := i + 1; j < len(loops); j++ {
			if loops[j].Depth > loops[i].Depth {
				loops[i], loops[j] = loops[j], loops[i]
			}
		}
	}
	for _, l := range loops {
		hoistLoop(f, dom, l)
	}
}

func hoistLoop(f *ir.Func, dom *ir.DomTree, l *ir.Loop) {
	pre := l.Preheader()
	if pre == nil {
		return
	}
	hasBarrier := false
	written := map[memKey]bool{}
	hasStore := false
	for _, b := range l.BlockList() {
		for _, v := range b.Values {
			if v.IsBarrier() {
				hasBarrier = true
			}
			for _, wk := range writeKeys(v) {
				written[wk] = true
				hasStore = true
			}
		}
	}

	hoisted := map[*ir.Value]bool{}
	invariant := func(v *ir.Value) bool {
		return !l.Contains(v.Block) || hoisted[v]
	}
	canHoist := func(v *ir.Value) bool {
		for _, a := range v.Args {
			if !invariant(a) {
				return false
			}
		}
		switch {
		case v.Dispatch:
			// Dispatch-tree predicates and guards are control-dependent on
			// their chain; hoisting one out of its diamond would test it for
			// receivers that belong to other ways.
			return false
		case v.Op == ir.OpPhi || v.Op == ir.OpParam:
			return false
		case v.Op.IsPure():
			return true
		case v.Op.IsCheck():
			if v.Deopt != nil {
				return false // SMPs never move
			}
			if hasBarrier {
				return false
			}
			for _, rk := range readKeys(v) {
				if written[rk] {
					return false
				}
			}
			// Checks of kinds the paper's passes hoist: shape, array, type.
			return true
		case v.Op.ReadsMemory() && !v.Op.WritesMemory() && !v.Op.IsCall():
			if hasBarrier || hasStore && anyWritten(written, readKeys(v)) {
				return false
			}
			if hasBarrier {
				return false
			}
			return true
		}
		return false
	}

	// Iterate to a fixpoint over the loop body in RPO.
	for changed := true; changed; {
		changed = false
		for _, b := range dom.RPO() {
			if !l.Contains(b) {
				continue
			}
			for i := 0; i < len(b.Values); i++ {
				v := b.Values[i]
				if hoisted[v] || !canHoist(v) {
					continue
				}
				// Checks and loads must be guaranteed to execute on the
				// hoisted path only when total; all our machine ops are
				// garbage-tolerant, so speculative hoisting is safe.
				b.RemoveValue(v)
				v.Block = pre
				pre.Values = append(pre.Values, v)
				hoisted[v] = true
				i--
				changed = true
			}
		}
	}
}

func anyWritten(written map[memKey]bool, keys []memKey) bool {
	for _, k := range keys {
		if written[k] {
			return true
		}
	}
	return false
}
