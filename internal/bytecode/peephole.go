package bytecode

// Peephole superinstruction fusion. The compiler's straightforward codegen
// produces recurring multi-instruction idioms — load-const-then-binop,
// compare-then-branch, and the five-instruction ++/-- expansion — each paying
// a full dispatch per instruction in the bytecode tiers. Fuse rewrites them
// into single superinstructions (OpAddK/OpSubK/OpMulK, OpCmpJF/OpCmpJT/
// OpCmpKJF/OpCmpKJT, OpIncr) after codegen and before any profile, artifact,
// or frame exists, so every tier sees one consistent code array and one pc
// space.
//
// Safety rules:
//   - A pattern's interior instructions must not be jump targets: fusion
//     never crosses a basic-block boundary, so OSR-entry headers and branch
//     targets stay addressable.
//   - Eliminated intermediate registers must be expression temporaries
//     (>= NumLocals) and dead after the pattern, proven by a backward
//     liveness datafow over the instruction-level CFG — not just by their
//     register range, since logical-operator codegen branches on live
//     registers.
//   - The fused instruction occupies the pattern's first pc; every later
//     profile (arith feedback, IC slots) and deopt/OSR site is allocated
//     against the fused code, so there are no profiling-site seams.

// Fuse rewrites fn's code in place, fusing superinstruction patterns and
// remapping jump targets. It must run once, immediately after codegen.
func Fuse(fn *Function) {
	if len(fn.Code) == 0 {
		return
	}
	liveOut := liveness(fn)
	target := jumpTargets(fn)

	code := fn.Code
	out := make([]Instr, 0, len(code))
	oldToNew := make([]int, len(code)+1)
	pc := 0
	for pc < len(code) {
		in, n := fuseAt(fn, pc, liveOut, target)
		if n == 0 {
			oldToNew[pc] = len(out)
			out = append(out, code[pc])
			pc++
			continue
		}
		for i := 0; i < n; i++ {
			oldToNew[pc+i] = len(out)
		}
		out = append(out, in)
		pc += n
	}
	oldToNew[len(code)] = len(out)

	for i := range out {
		switch out[i].Op {
		case OpJump:
			out[i].A = int32(oldToNew[out[i].A])
		case OpJumpIfTrue, OpJumpIfFalse:
			out[i].B = int32(oldToNew[out[i].B])
		case OpCmpJF, OpCmpJT, OpCmpKJF, OpCmpKJT:
			out[i].C = int32(oldToNew[out[i].C])
		}
	}
	fn.Code = out
}

// FuseTree fuses fn and every nested function.
func FuseTree(fn *Function) {
	Fuse(fn)
	for _, nested := range fn.Funcs {
		FuseTree(nested)
	}
}

// fuseAt tries every pattern anchored at pc, longest first, and returns the
// fused instruction plus the number of instructions consumed (0 = no match).
func fuseAt(fn *Function, pc int, liveOut []bitset, target []bool) (Instr, int) {
	code := fn.Code
	nl := fn.NumLocals
	temp := func(r int32) bool { return int(r) >= nl }
	// deadAfter reports that register r holds no live value after code[last]:
	// either it is not live-out, or instruction redef (an index into the
	// pattern) overwrote it before any later read.
	deadAfter := func(last int, r int32) bool { return !liveOut[last].has(int(r)) }
	interiorFree := func(n int) bool {
		if pc+n > len(code) {
			return false
		}
		for i := 1; i < n; i++ {
			if target[pc+i] {
				return false
			}
		}
		return true
	}
	in0 := code[pc]

	// INCR: the ++/-- expansion on a local —
	//   tonum t1, x; ldc t2, #1; add|sub t3, t1, t2; mov x, t3; mov t4, (t3|t1)
	// with every temporary dead after the pattern (the expression result
	// unused), becomes: incr x, ±1.
	if in0.Op == OpToNumber && interiorFree(5) {
		i1, i2, i3, i4 := code[pc+1], code[pc+2], code[pc+3], code[pc+4]
		x, t1 := in0.B, in0.A
		if i1.Op == OpLoadConst && (i2.Op == OpAdd || i2.Op == OpSub) &&
			i3.Op == OpMove && i4.Op == OpMove {
			t2, t3, t4 := i1.A, i2.A, i4.A
			kv := fn.Consts[i1.B]
			if int(x) < nl && temp(t1) && temp(t2) && temp(t3) && temp(t4) &&
				kv.IsInt32() && kv.Int32() == 1 &&
				i2.B == t1 && i2.C == t2 &&
				i3.A == x && i3.B == t3 &&
				(i4.B == t3 || i4.B == t1) &&
				x != t1 && x != t2 && x != t3 && x != t4 &&
				deadAfter(pc+4, t1) && deadAfter(pc+4, t2) &&
				deadAfter(pc+4, t3) && deadAfter(pc+4, t4) {
				delta := int32(1)
				if i2.Op == OpSub {
					delta = -1
				}
				return Instr{Op: OpIncr, A: x, B: delta, Line: in0.Line}, 5
			}
		}
	}

	// CmpKJF/CmpKJT: ldc t1, #K; cmp t2, a, t1; jf|jt t2, L  →  cmpkjf a, #K @L
	if in0.Op == OpLoadConst && interiorFree(3) {
		i1, i2 := code[pc+1], code[pc+2]
		if i1.Op.IsCompare() && (i2.Op == OpJumpIfFalse || i2.Op == OpJumpIfTrue) {
			t1, t2 := in0.A, i1.A
			if temp(t1) && temp(t2) && i1.C == t1 && i1.B != t1 && i2.A == t2 &&
				(t1 == t2 || deadAfter(pc+2, t1)) && deadAfter(pc+2, t2) {
				op := OpCmpKJF
				if i2.Op == OpJumpIfTrue {
					op = OpCmpKJT
				}
				return Instr{Op: op, A: i1.B, B: in0.B, C: i2.B, D: int32(i1.Op), Line: i1.Line}, 3
			}
		}
	}

	// AddK/SubK/MulK: ldc t, #K; add|sub|mul d, a, t  →  addk d, a, #K.
	// Only right-operand constants fuse: + is not commutative once strings
	// are involved, so operand order is preserved exactly.
	if in0.Op == OpLoadConst && interiorFree(2) {
		i1 := code[pc+1]
		var op Op
		switch i1.Op {
		case OpAdd:
			op = OpAddK
		case OpSub:
			op = OpSubK
		case OpMul:
			op = OpMulK
		}
		if op != 0 {
			t := in0.A
			if temp(t) && i1.C == t && i1.B != t &&
				(t == i1.A || deadAfter(pc+1, t)) {
				return Instr{Op: op, A: i1.A, B: i1.B, C: in0.B, Line: i1.Line}, 2
			}
		}
	}

	// CmpJF/CmpJT: cmp t, a, b; jf|jt t, L  →  cmpjf a, b @L with the dead
	// boolean register eliminated.
	if in0.Op.IsCompare() && interiorFree(2) {
		i1 := code[pc+1]
		if (i1.Op == OpJumpIfFalse || i1.Op == OpJumpIfTrue) && i1.A == in0.A &&
			temp(in0.A) && deadAfter(pc+1, in0.A) {
			op := OpCmpJF
			if i1.Op == OpJumpIfTrue {
				op = OpCmpJT
			}
			return Instr{Op: op, A: in0.B, B: in0.C, C: i1.B, D: int32(in0.Op), Line: in0.Line}, 2
		}
	}

	return Instr{}, 0
}

// --- instruction-level liveness ---

type bitset []uint64

func (b bitset) has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }
func (b bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) clear(i int)    { b[i>>6] &^= 1 << (uint(i) & 63) }

// or unions src into b, reporting whether b changed.
func (b bitset) or(src bitset) bool {
	changed := false
	for i, w := range src {
		if b[i]|w != b[i] {
			b[i] |= w
			changed = true
		}
	}
	return changed
}

// jumpTargets marks every pc that some jump lands on.
func jumpTargets(fn *Function) []bool {
	t := make([]bool, len(fn.Code)+1)
	for _, in := range fn.Code {
		switch in.Op {
		case OpJump:
			t[in.A] = true
		case OpJumpIfTrue, OpJumpIfFalse:
			t[in.B] = true
		case OpCmpJF, OpCmpJT, OpCmpKJF, OpCmpKJT:
			t[in.C] = true
		}
	}
	return t
}

// succs appends the control-flow successors of code[pc] to dst.
func succs(pc int, in Instr, dst []int) []int {
	switch in.Op {
	case OpJump:
		return append(dst, int(in.A))
	case OpJumpIfTrue, OpJumpIfFalse:
		return append(dst, pc+1, int(in.B))
	case OpCmpJF, OpCmpJT, OpCmpKJF, OpCmpKJT:
		return append(dst, pc+1, int(in.C))
	case OpReturn:
		return dst
	}
	return append(dst, pc+1)
}

// instrDef returns the register defined by in, or -1.
func instrDef(in Instr) int {
	switch in.Op {
	case OpLoadConst, OpLoadUndef, OpMove, OpNeg, OpNot, OpBitNot, OpTypeof,
		OpToNumber, OpCall, OpCallMethod, OpNew, OpNewObject, OpNewArray,
		OpGetProp, OpGetElem, OpGetGlobal, OpGetCell, OpMakeClosure,
		OpAddK, OpSubK, OpMulK, OpIncr:
		return int(in.A)
	}
	if in.Op.IsBinary() {
		return int(in.A)
	}
	return -1
}

// instrUses invokes use for every register read by in, including call
// argument windows.
func instrUses(in Instr, use func(int)) {
	switch in.Op {
	case OpMove, OpNeg, OpNot, OpBitNot, OpTypeof, OpToNumber:
		use(int(in.B))
	case OpJumpIfTrue, OpJumpIfFalse, OpReturn:
		use(int(in.A))
	case OpCall, OpNew:
		use(int(in.B))
		for i := int32(0); i < in.D; i++ {
			use(int(in.C + i))
		}
	case OpCallMethod:
		use(int(in.B))
		for i := int32(0); i < in.D; i++ {
			use(int(in.C + i))
		}
	case OpGetProp:
		use(int(in.B))
	case OpSetProp:
		use(int(in.A))
		use(int(in.C))
	case OpGetElem:
		use(int(in.B))
		use(int(in.C))
	case OpSetElem:
		use(int(in.A))
		use(int(in.B))
		use(int(in.C))
	case OpSetElemI:
		use(int(in.A))
		use(int(in.C))
	case OpSetGlobal:
		use(int(in.B))
	case OpSetCell:
		use(int(in.C))
	case OpAddK, OpSubK, OpMulK:
		use(int(in.B))
	case OpIncr:
		use(int(in.A))
	case OpCmpJF, OpCmpJT:
		use(int(in.A))
		use(int(in.B))
	case OpCmpKJF, OpCmpKJT:
		use(int(in.A))
	default:
		if in.Op.IsBinary() {
			use(int(in.B))
			use(int(in.C))
		}
	}
}

// liveness computes per-instruction live-out register sets by backward
// fixpoint over the instruction-level CFG.
func liveness(fn *Function) []bitset {
	n := len(fn.Code)
	words := (fn.NumRegs + 64) / 64
	liveIn := make([]bitset, n)
	liveOut := make([]bitset, n)
	for i := range liveIn {
		liveIn[i] = make(bitset, words)
		liveOut[i] = make(bitset, words)
	}
	scratch := make([]int, 0, 2)
	tmp := make(bitset, words)
	for changed := true; changed; {
		changed = false
		for pc := n - 1; pc >= 0; pc-- {
			in := fn.Code[pc]
			out := liveOut[pc]
			scratch = succs(pc, in, scratch[:0])
			for _, s := range scratch {
				if s < n && out.or(liveIn[s]) {
					changed = true
				}
			}
			copy(tmp, out)
			if d := instrDef(in); d >= 0 {
				tmp.clear(d)
			}
			instrUses(in, func(r int) { tmp.set(r) })
			if liveIn[pc].or(tmp) {
				changed = true
			}
		}
	}
	return liveOut
}
