package bytecode

import (
	"strings"
	"testing"

	"nomap/internal/parser"
)

func compile(t *testing.T, src string) *Function {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn, err := Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return fn
}

func nested(t *testing.T, main *Function, name string) *Function {
	t.Helper()
	for _, f := range main.Funcs {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("no nested function %q", name)
	return nil
}

func TestTopLevelVarsAreGlobals(t *testing.T) {
	main := compile(t, "var a = 1; a = a + 1;")
	hasSetGlobal := false
	for _, in := range main.Code {
		if in.Op == OpSetGlobal {
			hasSetGlobal = true
		}
	}
	if !hasSetGlobal {
		t.Error("top-level var must compile to global stores")
	}
}

func TestFunctionLocalsAreRegisters(t *testing.T) {
	main := compile(t, `function f(p) { var x = p + 1; return x; }`)
	f := nested(t, main, "f")
	if f.NumParams != 1 {
		t.Errorf("NumParams = %d", f.NumParams)
	}
	if f.NumLocals < 2 {
		t.Errorf("NumLocals = %d, want >= 2 (p, x)", f.NumLocals)
	}
	for _, in := range f.Code {
		if in.Op == OpGetGlobal || in.Op == OpSetGlobal {
			t.Errorf("local access compiled to global op: %v", in)
		}
	}
	if f.UsesClosure {
		t.Error("plain function must not be closure-pinned")
	}
}

func TestCapturedVariablesUseCells(t *testing.T) {
	main := compile(t, `
function outer() {
  var n = 0;
  function inner() { n = n + 1; return n; }
  return inner;
}`)
	outer := nested(t, main, "outer")
	if !outer.UsesClosure {
		t.Error("outer provides a cell; must be closure-pinned")
	}
	if outer.NumCells != 1 {
		t.Errorf("outer.NumCells = %d, want 1", outer.NumCells)
	}
	inner := nested(t, outer, "inner")
	if !inner.UsesClosure {
		t.Error("inner captures; must be closure-pinned")
	}
	usesCell := false
	for _, in := range inner.Code {
		if in.Op == OpGetCell || in.Op == OpSetCell {
			usesCell = true
			if in.Op == OpGetCell && in.B != 1 {
				t.Errorf("capture depth = %d, want 1", in.B)
			}
		}
	}
	if !usesCell {
		t.Error("inner must access n through cells")
	}
}

func TestCapturedParamCopiedToCell(t *testing.T) {
	main := compile(t, `
function makeAdder(k) {
  return function(x) { return x + k; };
}`)
	outer := nested(t, main, "makeAdder")
	if len(outer.ParamCells) != 1 || outer.ParamCells[0][0] != 0 {
		t.Errorf("ParamCells = %v, want [[0 0]]", outer.ParamCells)
	}
	// Prologue must copy the param register into its cell.
	if outer.Code[0].Op != OpSetCell {
		t.Errorf("first op = %v, want setcell prologue", outer.Code[0].Op)
	}
}

func TestJumpTargetsInRange(t *testing.T) {
	main := compile(t, `
function f(n) {
  var s = 0;
  for (var i = 0; i < n; i++) {
    if (i % 2) continue;
    if (i > 100) break;
    s += i;
  }
  do { s++; } while (s < 0);
  while (s > 1000) { s -= 1; }
  return s;
}`)
	f := nested(t, main, "f")
	for pc, in := range f.Code {
		check := func(target int32) {
			if target < 0 || int(target) > len(f.Code) {
				t.Errorf("pc %d: jump target %d out of range", pc, target)
			}
		}
		switch in.Op {
		case OpJump:
			check(in.A)
		case OpJumpIfTrue, OpJumpIfFalse:
			check(in.B)
		}
	}
}

func TestFunctionsEndWithReturn(t *testing.T) {
	main := compile(t, `function f() { var x = 1; } function g() { return 2; }`)
	for _, f := range main.Funcs {
		last := f.Code[len(f.Code)-1]
		if last.Op != OpReturn {
			t.Errorf("%s ends with %v, want return", f.Name, last.Op)
		}
	}
}

func TestConstantPoolDeduplicated(t *testing.T) {
	main := compile(t, `function f() { return 7 + 7 + 7 + 7; }`)
	f := nested(t, main, "f")
	sevens := 0
	for _, c := range f.Consts {
		if c.IsInt32() && c.Int32() == 7 {
			sevens++
		}
	}
	if sevens != 1 {
		t.Errorf("constant 7 appears %d times in the pool", sevens)
	}
	// But int 1 and double 1.0... Number canonicalizes; strings distinct.
	main2 := compile(t, `function g() { return "a" + "a" + "b"; }`)
	g := nested(t, main2, "g")
	if len(g.Consts) != 2 {
		t.Errorf("string pool size = %d, want 2", len(g.Consts))
	}
}

func TestICSlotsUnique(t *testing.T) {
	main := compile(t, `function f(o) { return o.a + o.b + o.a; }`)
	f := nested(t, main, "f")
	seen := map[int32]bool{}
	n := 0
	for _, in := range f.Code {
		if in.Op == OpGetProp {
			if seen[in.D] {
				t.Errorf("IC slot %d reused", in.D)
			}
			seen[in.D] = true
			n++
		}
	}
	if n != 3 || f.NumICs < 3 {
		t.Errorf("props=%d NumICs=%d", n, f.NumICs)
	}
}

func TestDisassembleIsReadable(t *testing.T) {
	main := compile(t, `function f(a, b) { return a < b ? a : b; }`)
	f := nested(t, main, "f")
	dis := f.Disassemble()
	for _, want := range []string{"function f", "ret", "jf"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	for _, src := range []string{
		"break;",
		"continue;",
		"function f() { break; }",
	} {
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Compile(prog); err == nil {
			t.Errorf("%q: expected compile error", src)
		}
	}
}

func TestMethodCallEncoding(t *testing.T) {
	main := compile(t, `function f(o) { return o.m(1, 2, 3); }`)
	f := nested(t, main, "f")
	found := false
	for _, in := range f.Code {
		if in.Op == OpCallMethod {
			found = true
			if in.D != 3 {
				t.Errorf("argc = %d, want 3", in.D)
			}
			if f.Names[in.E] != "m" {
				t.Errorf("method name = %q", f.Names[in.E])
			}
		}
	}
	if !found {
		t.Error("no callm instruction emitted")
	}
}
