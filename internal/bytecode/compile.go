package bytecode

import (
	"fmt"

	"nomap/internal/ast"
	"nomap/internal/value"
)

// Compile translates a parsed program into a top-level function ("<main>",
// executed once per run) plus recursively compiled nested functions. All
// top-level vars become globals, matching JavaScript script semantics. The
// peephole fusion pass (Fuse) runs on every compiled function, so the code
// all tiers see contains superinstructions.
func Compile(prog *ast.Program) (*Function, error) {
	fn, err := compileProg(prog)
	if err != nil {
		return nil, err
	}
	FuseTree(fn)
	return fn, nil
}

// CompileNoFuse compiles without the peephole fusion pass: the exact
// one-op-per-step codegen output. It is the DisableBoxing A/B baseline and a
// reference semantics for differential tests.
func CompileNoFuse(prog *ast.Program) (*Function, error) {
	return compileProg(prog)
}

func compileProg(prog *ast.Program) (*Function, error) {
	res := resolveProgram(prog)
	c := newCompiler("<main>", nil, res)
	if err := c.hoistFunctionDecls(prog.Body); err != nil {
		return nil, err
	}
	for _, s := range prog.Body {
		if err := c.stmt(s); err != nil {
			return nil, err
		}
	}
	c.emitImplicitReturn()
	return c.finish(), nil
}

// CompileError is a semantic error found during bytecode generation.
type CompileError struct {
	P   ast.Position
	Msg string
}

func (e *CompileError) Error() string {
	return fmt.Sprintf("compile error at %s: %s", e.P, e.Msg)
}

type loopCtx struct {
	breakPatches    []int
	continuePatches []int
	// isSwitch marks a switch context: break targets it, continue skips it.
	isSwitch bool
}

type compiler struct {
	fn   *Function
	info *fnInfo // nil at top level
	res  *resolution

	nextTemp int // next free temporary register
	maxTemp  int

	loops []*loopCtx

	constIdx map[constKey]int
	nameIdx  map[string]int
	line     int32
}

type constKey struct {
	kind value.Kind
	f    float64
	s    string
	b    bool
}

func newCompiler(name string, info *fnInfo, res *resolution) *compiler {
	c := &compiler{
		fn:       &Function{Name: name},
		info:     info,
		res:      res,
		constIdx: make(map[constKey]int),
		nameIdx:  make(map[string]int),
	}
	if info != nil {
		c.fn.NumParams = len(info.lit.Params)
		c.fn.NumLocals = info.numLocals
		c.fn.NumCells = info.numCells
		c.fn.UsesClosure = info.uses
		c.fn.ParamCells = info.paramCells
	}
	c.nextTemp = c.fn.NumLocals
	c.maxTemp = c.nextTemp
	return c
}

func (c *compiler) finish() *Function {
	c.fn.NumRegs = c.maxTemp
	return c.fn
}

func (c *compiler) errf(p ast.Position, format string, args ...any) error {
	return &CompileError{P: p, Msg: fmt.Sprintf(format, args...)}
}

// --- emission helpers ---

func (c *compiler) emit(in Instr) int {
	in.Line = c.line
	c.fn.Code = append(c.fn.Code, in)
	return len(c.fn.Code) - 1
}

func (c *compiler) patchJump(at int) {
	target := int32(len(c.fn.Code))
	in := &c.fn.Code[at]
	switch in.Op {
	case OpJump:
		in.A = target
	case OpJumpIfTrue, OpJumpIfFalse:
		in.B = target
	default:
		panic("patching non-jump")
	}
}

func (c *compiler) here() int32 { return int32(len(c.fn.Code)) }

// alloc reserves one temporary register.
func (c *compiler) alloc() int {
	r := c.nextTemp
	c.nextTemp++
	if c.nextTemp > c.maxTemp {
		c.maxTemp = c.nextTemp
	}
	return r
}

// allocN reserves n consecutive temporaries (call argument windows).
func (c *compiler) allocN(n int) int {
	r := c.nextTemp
	c.nextTemp += n
	if c.nextTemp > c.maxTemp {
		c.maxTemp = c.nextTemp
	}
	return r
}

// mark/release implement stack-disciplined temp reuse.
func (c *compiler) mark() int        { return c.nextTemp }
func (c *compiler) release(mark int) { c.nextTemp = mark }

func (c *compiler) constant(v value.Value) int {
	k := constKey{kind: v.Kind()}
	switch v.Kind() {
	case value.KindInt32, value.KindDouble:
		k.f = v.Float()
		if v.Kind() == value.KindDouble {
			k.b = true // distinguish double 1 from int 1
		}
	case value.KindString:
		k.s = v.StringVal()
	case value.KindBool:
		k.b = v.Bool()
	}
	if i, ok := c.constIdx[k]; ok {
		return i
	}
	c.fn.Consts = append(c.fn.Consts, v)
	i := len(c.fn.Consts) - 1
	c.constIdx[k] = i
	return i
}

func (c *compiler) name(s string) int {
	if i, ok := c.nameIdx[s]; ok {
		return i
	}
	c.fn.Names = append(c.fn.Names, s)
	i := len(c.fn.Names) - 1
	c.nameIdx[s] = i
	return i
}

func (c *compiler) icSlot() int {
	s := c.fn.NumICs
	c.fn.NumICs++
	return s
}

func (c *compiler) emitImplicitReturn() {
	t := c.alloc()
	c.emit(Instr{Op: OpLoadUndef, A: int32(t)})
	c.emit(Instr{Op: OpReturn, A: int32(t)})
}

// hoistFunctionDecls materializes closures for directly declared functions
// before other statements run (JavaScript hoisting).
func (c *compiler) hoistFunctionDecls(body []ast.Stmt) error {
	for _, s := range body {
		d, ok := s.(*ast.FunctionDecl)
		if !ok {
			continue
		}
		sub, err := c.compileNested(d.Fn)
		if err != nil {
			return err
		}
		m := c.mark()
		t := c.alloc()
		c.emit(Instr{Op: OpMakeClosure, A: int32(t), B: int32(sub)})
		if err := c.storeName(d.Fn.Name, t, d.P); err != nil {
			return err
		}
		c.release(m)
	}
	return nil
}

func (c *compiler) compileNested(lit *ast.FunctionLiteral) (int, error) {
	info := c.res.fns[lit]
	name := lit.Name
	if name == "" {
		name = "<anonymous>"
	}
	sub := newCompiler(name, info, c.res)
	// Copy captured params into their cells on entry.
	for _, pc := range info.paramCells {
		sub.emit(Instr{Op: OpSetCell, A: 0, B: int32(pc[1]), C: int32(pc[0])})
	}
	if err := sub.hoistFunctionDecls(lit.Body.Body); err != nil {
		return 0, err
	}
	for _, s := range lit.Body.Body {
		if err := sub.stmt(s); err != nil {
			return 0, err
		}
	}
	sub.emitImplicitReturn()
	c.fn.Funcs = append(c.fn.Funcs, sub.finish())
	return len(c.fn.Funcs) - 1, nil
}

// storeName assigns register src to the named variable.
func (c *compiler) storeName(name string, src int, p ast.Position) error {
	ref := c.res.resolveName(name, c.info)
	switch ref.kind {
	case refGlobal:
		c.emit(Instr{Op: OpSetGlobal, A: int32(c.name(name)), B: int32(src), C: int32(c.icSlot())})
	case refLocal:
		if ref.index != src {
			c.emit(Instr{Op: OpMove, A: int32(ref.index), B: int32(src)})
		}
	case refCell:
		c.emit(Instr{Op: OpSetCell, A: int32(ref.depth), B: int32(ref.index), C: int32(src)})
	}
	return nil
}

// --- statements ---

func (c *compiler) stmt(s ast.Stmt) error {
	c.line = int32(s.Pos().Line)
	switch n := s.(type) {
	case *ast.VarDecl:
		for i, name := range n.Names {
			if n.Inits[i] == nil {
				// Hoisted declarations without initializers: globals must
				// exist as undefined; locals already start undefined.
				if c.res.resolveName(name, c.info).kind == refGlobal {
					m := c.mark()
					t := c.alloc()
					c.emit(Instr{Op: OpLoadUndef, A: int32(t)})
					if err := c.storeName(name, t, n.P); err != nil {
						return err
					}
					c.release(m)
				}
				continue
			}
			m := c.mark()
			t, err := c.exprToTemp(n.Inits[i])
			if err != nil {
				return err
			}
			if err := c.storeName(name, t, n.P); err != nil {
				return err
			}
			c.release(m)
		}
		return nil
	case *ast.FunctionDecl:
		return nil // handled by hoisting
	case *ast.ExprStmt:
		m := c.mark()
		_, err := c.exprToTemp(n.X)
		c.release(m)
		return err
	case *ast.BlockStmt:
		for _, b := range n.Body {
			if err := c.stmt(b); err != nil {
				return err
			}
		}
		return nil
	case *ast.IfStmt:
		m := c.mark()
		cond, err := c.exprToTemp(n.Cond)
		if err != nil {
			return err
		}
		jf := c.emit(Instr{Op: OpJumpIfFalse, A: int32(cond)})
		c.release(m)
		if err := c.stmt(n.Then); err != nil {
			return err
		}
		if n.Else == nil {
			c.patchJump(jf)
			return nil
		}
		jend := c.emit(Instr{Op: OpJump})
		c.patchJump(jf)
		if err := c.stmt(n.Else); err != nil {
			return err
		}
		c.patchJump(jend)
		return nil
	case *ast.WhileStmt:
		return c.loop(nil, n.Cond, nil, n.Body, false)
	case *ast.DoWhileStmt:
		return c.loop(nil, n.Cond, nil, n.Body, true)
	case *ast.ForStmt:
		return c.loop(n.Init, n.Cond, n.Post, n.Body, false)
	case *ast.ReturnStmt:
		m := c.mark()
		var src int
		if n.X != nil {
			t, err := c.exprToTemp(n.X)
			if err != nil {
				return err
			}
			src = t
		} else {
			src = c.alloc()
			c.emit(Instr{Op: OpLoadUndef, A: int32(src)})
		}
		c.emit(Instr{Op: OpReturn, A: int32(src)})
		c.release(m)
		return nil
	case *ast.SwitchStmt:
		return c.switchStmt(n)
	case *ast.BreakStmt:
		if len(c.loops) == 0 {
			return c.errf(n.P, "break outside loop or switch")
		}
		l := c.loops[len(c.loops)-1]
		l.breakPatches = append(l.breakPatches, c.emit(Instr{Op: OpJump}))
		return nil
	case *ast.ContinueStmt:
		// continue applies to loops only; skip enclosing switch contexts.
		for i := len(c.loops) - 1; i >= 0; i-- {
			if c.loops[i].isSwitch {
				continue
			}
			c.loops[i].continuePatches = append(c.loops[i].continuePatches, c.emit(Instr{Op: OpJump}))
			return nil
		}
		return c.errf(n.P, "continue outside loop")
	}
	return c.errf(s.Pos(), "unsupported statement %T", s)
}

// loop compiles while / do-while / for uniformly. Layout:
//
//	init
//	head:  cond -> jf exit        (skipped on first iteration of do-while)
//	body
//	cont:  post; jmp head
//	exit:
func (c *compiler) loop(init ast.Stmt, cond ast.Expr, post ast.Expr, body ast.Stmt, isDoWhile bool) error {
	if init != nil {
		if err := c.stmt(init); err != nil {
			return err
		}
	}
	var skipFirstCond int
	if isDoWhile {
		skipFirstCond = c.emit(Instr{Op: OpJump})
	}
	head := c.here()
	var condJump = -1
	if cond != nil {
		m := c.mark()
		t, err := c.exprToTemp(cond)
		if err != nil {
			return err
		}
		condJump = c.emit(Instr{Op: OpJumpIfFalse, A: int32(t)})
		c.release(m)
	}
	if isDoWhile {
		c.patchJump(skipFirstCond)
	}
	l := &loopCtx{}
	c.loops = append(c.loops, l)
	if err := c.stmt(body); err != nil {
		return err
	}
	c.loops = c.loops[:len(c.loops)-1]
	// continue target: post-expression (or condition re-check).
	for _, at := range l.continuePatches {
		c.patchJump(at)
	}
	if post != nil {
		m := c.mark()
		if _, err := c.exprToTemp(post); err != nil {
			return err
		}
		c.release(m)
	}
	c.emit(Instr{Op: OpJump, A: head})
	if condJump >= 0 {
		c.patchJump(condJump)
	}
	for _, at := range l.breakPatches {
		c.patchJump(at)
	}
	return nil
}

// switchStmt desugars a switch into a strict-equality dispatch sequence
// followed by the case bodies laid out for fallthrough:
//
//	disc = <discriminant>
//	if disc === test0 -> body0; if disc === test1 -> body1; ...
//	jmp defaultBody (or end)
//	body0: ...; body1: ...   (fallthrough unless break)
func (c *compiler) switchStmt(n *ast.SwitchStmt) error {
	m := c.mark()
	disc := c.alloc()
	if err := c.expr(n.Disc, disc); err != nil {
		return err
	}
	// Dispatch: one placeholder jump per non-default case.
	caseJumps := make(map[int]int) // case index -> jump pc
	eq := c.alloc()
	for i, cs := range n.Cases {
		if cs.Test == nil {
			continue
		}
		tm := c.mark()
		tr, err := c.exprToTemp(cs.Test)
		if err != nil {
			return err
		}
		c.emit(Instr{Op: OpStrictEq, A: int32(eq), B: int32(disc), C: int32(tr)})
		caseJumps[i] = c.emit(Instr{Op: OpJumpIfTrue, A: int32(eq)})
		c.release(tm)
	}
	defaultJump := c.emit(Instr{Op: OpJump}) // to default body or end
	c.release(m)

	ctx := &loopCtx{isSwitch: true}
	c.loops = append(c.loops, ctx)
	defaultPatched := false
	for i, cs := range n.Cases {
		if at, ok := caseJumps[i]; ok {
			c.patchJump(at)
		} else {
			c.patchJump(defaultJump)
			defaultPatched = true
		}
		for _, st := range cs.Body {
			if err := c.stmt(st); err != nil {
				return err
			}
		}
	}
	c.loops = c.loops[:len(c.loops)-1]
	if !defaultPatched {
		c.patchJump(defaultJump)
	}
	for _, at := range ctx.breakPatches {
		c.patchJump(at)
	}
	return nil
}

// --- expressions ---

// exprToTemp evaluates e into a register and returns it. Identifiers bound to
// local registers are returned in place (no copy); anything else lands in a
// fresh temporary.
func (c *compiler) exprToTemp(e ast.Expr) (int, error) {
	if id, ok := e.(*ast.Ident); ok {
		ref := c.res.resolveName(id.Name, c.info)
		if ref.kind == refLocal {
			return ref.index, nil
		}
	}
	dst := c.alloc()
	if err := c.expr(e, dst); err != nil {
		return 0, err
	}
	return dst, nil
}

var binaryOps = map[string]Op{
	"+": OpAdd, "-": OpSub, "*": OpMul, "/": OpDiv, "%": OpMod,
	"&": OpBitAnd, "|": OpBitOr, "^": OpBitXor,
	"<<": OpShl, ">>": OpShr, ">>>": OpUShr,
	"<": OpLess, "<=": OpLessEq, ">": OpGreater, ">=": OpGreaterEq,
	"==": OpEq, "!=": OpNeq, "===": OpStrictEq, "!==": OpStrictNeq,
}

// expr compiles e into the given destination register.
func (c *compiler) expr(e ast.Expr, dst int) error {
	c.line = int32(e.Pos().Line)
	switch n := e.(type) {
	case *ast.NumberLit:
		c.emit(Instr{Op: OpLoadConst, A: int32(dst), B: int32(c.constant(value.Number(n.Value)))})
		return nil
	case *ast.StringLit:
		c.emit(Instr{Op: OpLoadConst, A: int32(dst), B: int32(c.constant(value.Str(n.Value)))})
		return nil
	case *ast.BoolLit:
		c.emit(Instr{Op: OpLoadConst, A: int32(dst), B: int32(c.constant(value.Boolean(n.Value)))})
		return nil
	case *ast.NullLit:
		c.emit(Instr{Op: OpLoadConst, A: int32(dst), B: int32(c.constant(value.Null()))})
		return nil
	case *ast.UndefinedLit:
		c.emit(Instr{Op: OpLoadUndef, A: int32(dst)})
		return nil
	case *ast.Ident:
		ref := c.res.resolveName(n.Name, c.info)
		switch ref.kind {
		case refGlobal:
			c.emit(Instr{Op: OpGetGlobal, A: int32(dst), B: int32(c.name(n.Name)), C: int32(c.icSlot())})
		case refLocal:
			if ref.index != dst {
				c.emit(Instr{Op: OpMove, A: int32(dst), B: int32(ref.index)})
			}
		case refCell:
			c.emit(Instr{Op: OpGetCell, A: int32(dst), B: int32(ref.depth), C: int32(ref.index)})
		}
		return nil
	case *ast.ArrayLit:
		c.emit(Instr{Op: OpNewArray, A: int32(dst), B: int32(len(n.Elems))})
		for i, el := range n.Elems {
			m := c.mark()
			t, err := c.exprToTemp(el)
			if err != nil {
				return err
			}
			c.emit(Instr{Op: OpSetElemI, A: int32(dst), B: int32(i), C: int32(t)})
			c.release(m)
		}
		return nil
	case *ast.ObjectLit:
		c.emit(Instr{Op: OpNewObject, A: int32(dst)})
		for i, k := range n.Keys {
			m := c.mark()
			t, err := c.exprToTemp(n.Values[i])
			if err != nil {
				return err
			}
			c.emit(Instr{Op: OpSetProp, A: int32(dst), B: int32(c.name(k)), C: int32(t), D: int32(c.icSlot())})
			c.release(m)
		}
		return nil
	case *ast.FunctionLiteral:
		idx, err := c.compileNested(n)
		if err != nil {
			return err
		}
		c.emit(Instr{Op: OpMakeClosure, A: int32(dst), B: int32(idx)})
		return nil
	case *ast.Unary:
		return c.unary(n, dst)
	case *ast.Update:
		return c.update(n, dst)
	case *ast.Binary:
		op, ok := binaryOps[n.Op]
		if !ok {
			return c.errf(n.P, "unsupported binary operator %q", n.Op)
		}
		m := c.mark()
		l, err := c.exprToTemp(n.L)
		if err != nil {
			return err
		}
		r, err := c.exprToTemp(n.R)
		if err != nil {
			return err
		}
		c.emit(Instr{Op: op, A: int32(dst), B: int32(l), C: int32(r)})
		c.release(m)
		return nil
	case *ast.Logical:
		if err := c.expr(n.L, dst); err != nil {
			return err
		}
		var j int
		if n.Op == "&&" {
			j = c.emit(Instr{Op: OpJumpIfFalse, A: int32(dst)})
		} else {
			j = c.emit(Instr{Op: OpJumpIfTrue, A: int32(dst)})
		}
		if err := c.expr(n.R, dst); err != nil {
			return err
		}
		c.patchJump(j)
		return nil
	case *ast.Assign:
		return c.assign(n, dst)
	case *ast.Conditional:
		m := c.mark()
		t, err := c.exprToTemp(n.Cond)
		if err != nil {
			return err
		}
		jf := c.emit(Instr{Op: OpJumpIfFalse, A: int32(t)})
		c.release(m)
		if err := c.expr(n.A, dst); err != nil {
			return err
		}
		jend := c.emit(Instr{Op: OpJump})
		c.patchJump(jf)
		if err := c.expr(n.B, dst); err != nil {
			return err
		}
		c.patchJump(jend)
		return nil
	case *ast.Member:
		m := c.mark()
		obj, err := c.exprToTemp(n.X)
		if err != nil {
			return err
		}
		c.emit(Instr{Op: OpGetProp, A: int32(dst), B: int32(obj), C: int32(c.name(n.Name)), D: int32(c.icSlot())})
		c.release(m)
		return nil
	case *ast.Index:
		m := c.mark()
		obj, err := c.exprToTemp(n.X)
		if err != nil {
			return err
		}
		idx, err := c.exprToTemp(n.I)
		if err != nil {
			return err
		}
		c.emit(Instr{Op: OpGetElem, A: int32(dst), B: int32(obj), C: int32(idx)})
		c.release(m)
		return nil
	case *ast.Call:
		return c.call(n, dst)
	}
	return c.errf(e.Pos(), "unsupported expression %T", e)
}

func (c *compiler) unary(n *ast.Unary, dst int) error {
	m := c.mark()
	src, err := c.exprToTemp(n.X)
	if err != nil {
		return err
	}
	defer c.release(m)
	switch n.Op {
	case "-":
		c.emit(Instr{Op: OpNeg, A: int32(dst), B: int32(src)})
	case "+":
		c.emit(Instr{Op: OpToNumber, A: int32(dst), B: int32(src)})
	case "!":
		c.emit(Instr{Op: OpNot, A: int32(dst), B: int32(src)})
	case "~":
		c.emit(Instr{Op: OpBitNot, A: int32(dst), B: int32(src)})
	case "typeof":
		c.emit(Instr{Op: OpTypeof, A: int32(dst), B: int32(src)})
	default:
		return c.errf(n.P, "unsupported unary operator %q", n.Op)
	}
	return nil
}

func (c *compiler) update(n *ast.Update, dst int) error {
	op := OpAdd
	if n.Op == "--" {
		op = OpSub
	}
	one := int32(c.constant(value.Int(1)))
	m := c.mark()
	defer c.release(m)
	oldN := c.alloc()
	newV := c.alloc()
	oneR := c.alloc()
	cur, tr, err := c.loadTarget(n.X)
	if err != nil {
		return err
	}
	c.emit(Instr{Op: OpToNumber, A: int32(oldN), B: int32(cur)})
	c.emit(Instr{Op: OpLoadConst, A: int32(oneR), B: one})
	c.emit(Instr{Op: op, A: int32(newV), B: int32(oldN), C: int32(oneR)})
	if err := c.storeTarget(n.X, newV, tr); err != nil {
		return err
	}
	if n.Prefix {
		c.emit(Instr{Op: OpMove, A: int32(dst), B: int32(newV)})
	} else {
		c.emit(Instr{Op: OpMove, A: int32(dst), B: int32(oldN)})
	}
	return nil
}

func (c *compiler) assign(n *ast.Assign, dst int) error {
	m := c.mark()
	defer c.release(m)
	if n.Op == "" {
		// Evaluate target sub-expressions before the value (JS order).
		tr, err := c.evalTargetRefs(n.Target)
		if err != nil {
			return err
		}
		v, err := c.exprToTemp(n.Value)
		if err != nil {
			return err
		}
		if err := c.storeTarget(n.Target, v, tr); err != nil {
			return err
		}
		if v != dst {
			c.emit(Instr{Op: OpMove, A: int32(dst), B: int32(v)})
		}
		return nil
	}
	op, ok := binaryOps[n.Op]
	if !ok {
		return c.errf(n.P, "unsupported compound operator %q", n.Op)
	}
	cur, tr, err := c.loadTarget(n.Target)
	if err != nil {
		return err
	}
	v, err := c.exprToTemp(n.Value)
	if err != nil {
		return err
	}
	res := c.alloc()
	c.emit(Instr{Op: op, A: int32(res), B: int32(cur), C: int32(v)})
	if err := c.storeTarget(n.Target, res, tr); err != nil {
		return err
	}
	if res != dst {
		c.emit(Instr{Op: OpMove, A: int32(dst), B: int32(res)})
	}
	return nil
}

// targetRef holds the registers of a member/index target's evaluated
// sub-expressions, so load/store pairs run side effects exactly once.
type targetRef struct {
	obj, idx int // -1 when not applicable
}

// evalTargetRefs evaluates the object (and index) sub-expressions of an
// assignment target into temporaries, leaving them live for storeTarget.
func (c *compiler) evalTargetRefs(e ast.Expr) (targetRef, error) {
	tr := targetRef{obj: -1, idx: -1}
	switch t := e.(type) {
	case *ast.Member:
		tr.obj = c.alloc()
		if err := c.expr(t.X, tr.obj); err != nil {
			return tr, err
		}
	case *ast.Index:
		tr.obj = c.alloc()
		if err := c.expr(t.X, tr.obj); err != nil {
			return tr, err
		}
		tr.idx = c.alloc()
		if err := c.expr(t.I, tr.idx); err != nil {
			return tr, err
		}
	}
	return tr, nil
}

// loadTarget evaluates an assignable expression's current value into a
// register, returning the evaluated target refs for the paired storeTarget.
func (c *compiler) loadTarget(e ast.Expr) (int, targetRef, error) {
	tr, err := c.evalTargetRefs(e)
	if err != nil {
		return 0, tr, err
	}
	switch t := e.(type) {
	case *ast.Ident:
		reg, err := c.exprToTemp(t)
		return reg, tr, err
	case *ast.Member:
		dst := c.alloc()
		c.emit(Instr{Op: OpGetProp, A: int32(dst), B: int32(tr.obj), C: int32(c.name(t.Name)), D: int32(c.icSlot())})
		return dst, tr, nil
	case *ast.Index:
		dst := c.alloc()
		c.emit(Instr{Op: OpGetElem, A: int32(dst), B: int32(tr.obj), C: int32(tr.idx)})
		return dst, tr, nil
	}
	return 0, tr, c.errf(e.Pos(), "invalid assignment target %T", e)
}

// storeTarget writes src to an assignable expression using the target refs
// evaluated by evalTargetRefs/loadTarget.
func (c *compiler) storeTarget(e ast.Expr, src int, tr targetRef) error {
	switch t := e.(type) {
	case *ast.Ident:
		return c.storeName(t.Name, src, t.P)
	case *ast.Member:
		c.emit(Instr{Op: OpSetProp, A: int32(tr.obj), B: int32(c.name(t.Name)), C: int32(src), D: int32(c.icSlot())})
		return nil
	case *ast.Index:
		c.emit(Instr{Op: OpSetElem, A: int32(tr.obj), B: int32(tr.idx), C: int32(src)})
		return nil
	}
	return c.errf(e.Pos(), "invalid assignment target %T", e)
}

func (c *compiler) call(n *ast.Call, dst int) error {
	m := c.mark()
	defer c.release(m)
	if n.IsNew {
		callee, err := c.exprToTemp(n.Callee)
		if err != nil {
			return err
		}
		argStart, err := c.argWindow(n.Args)
		if err != nil {
			return err
		}
		c.emit(Instr{Op: OpNew, A: int32(dst), B: int32(callee), C: int32(argStart), D: int32(len(n.Args))})
		return nil
	}
	if member, ok := n.Callee.(*ast.Member); ok {
		recv, err := c.exprToTemp(member.X)
		if err != nil {
			return err
		}
		argStart, err := c.argWindow(n.Args)
		if err != nil {
			return err
		}
		c.emit(Instr{
			Op: OpCallMethod, A: int32(dst), B: int32(recv),
			C: int32(argStart), D: int32(len(n.Args)), E: int32(c.name(member.Name)),
		})
		return nil
	}
	callee, err := c.exprToTemp(n.Callee)
	if err != nil {
		return err
	}
	argStart, err := c.argWindow(n.Args)
	if err != nil {
		return err
	}
	c.emit(Instr{Op: OpCall, A: int32(dst), B: int32(callee), C: int32(argStart), D: int32(len(n.Args))})
	return nil
}

// argWindow evaluates arguments into a fresh block of consecutive registers.
func (c *compiler) argWindow(args []ast.Expr) (int, error) {
	start := c.allocN(len(args))
	for i, a := range args {
		if err := c.expr(a, start+i); err != nil {
			return 0, err
		}
	}
	return start, nil
}
