package bytecode

import (
	"nomap/internal/ast"
)

// Variable resolution. JavaScript vars are function-scoped and hoisted, so a
// pre-pass collects each function's declarations and marks captures (locals
// referenced across a function boundary). Slot assignment runs after the
// whole program is walked — capture marking must complete first because a
// captured local lives in a closure cell instead of a register. The compiler
// then classifies each name reference on demand with resolveName.

type refKind uint8

const (
	refGlobal refKind = iota
	refLocal
	refCell
)

type varRef struct {
	kind  refKind
	index int // register or cell index
	depth int // environment hops for refCell
}

type localInfo struct {
	name       string
	isParam    bool
	paramIndex int
	captured   bool
	reg        int
	cell       int
}

type fnInfo struct {
	lit        *ast.FunctionLiteral
	parent     *fnInfo
	locals     map[string]*localInfo
	order      []*localInfo // declaration order, params first
	numLocals  int
	numCells   int
	uses       bool // usesClosure: captures, is captured from, or nests functions
	paramCells [][2]int
}

type resolution struct {
	fns map[*ast.FunctionLiteral]*fnInfo
}

func resolveProgram(prog *ast.Program) *resolution {
	r := &resolution{fns: make(map[*ast.FunctionLiteral]*fnInfo)}
	// Top level: every var is a global, so the enclosing fnInfo is nil.
	for _, s := range prog.Body {
		r.stmt(s, nil)
	}
	for _, info := range r.fns {
		assignSlots(info)
	}
	return r
}

func assignSlots(info *fnInfo) {
	reg := len(info.lit.Params) // params always hold registers [0, numParams)
	cell := 0
	for _, li := range info.order {
		switch {
		case li.isParam:
			li.reg = li.paramIndex
			if li.captured {
				li.cell = cell
				cell++
				info.paramCells = append(info.paramCells, [2]int{li.paramIndex, li.cell})
			}
		case li.captured:
			li.cell = cell
			cell++
		default:
			li.reg = reg
			reg++
		}
	}
	info.numLocals = reg
	info.numCells = cell
}

// resolveName classifies a reference to name made from function `in` (nil at
// top level, where everything is global). Must run after assignSlots.
func (r *resolution) resolveName(name string, in *fnInfo) varRef {
	depth := 0
	for cur := in; cur != nil; cur = cur.parent {
		if li, ok := cur.locals[name]; ok {
			if li.captured {
				return varRef{kind: refCell, index: li.cell, depth: depth}
			}
			return varRef{kind: refLocal, index: li.reg}
		}
		depth++
	}
	return varRef{kind: refGlobal}
}

func (r *resolution) function(lit *ast.FunctionLiteral, parent *fnInfo) *fnInfo {
	info := &fnInfo{lit: lit, parent: parent, locals: make(map[string]*localInfo)}
	r.fns[lit] = info
	if parent != nil {
		parent.uses = true // nesting pins the parent to lower tiers
	}
	declare := func(name string, isParam bool, paramIndex int) {
		if _, ok := info.locals[name]; ok {
			return
		}
		li := &localInfo{name: name, isParam: isParam, paramIndex: paramIndex}
		info.locals[name] = li
		info.order = append(info.order, li)
	}
	for i, p := range lit.Params {
		declare(p, true, i)
	}
	collectDecls(lit.Body, func(name string) { declare(name, false, 0) })
	for _, s := range lit.Body.Body {
		r.stmt(s, info)
	}
	return info
}

// collectDecls finds hoisted var and function declarations without
// descending into nested function literals.
func collectDecls(s ast.Stmt, add func(string)) {
	switch n := s.(type) {
	case *ast.VarDecl:
		for _, name := range n.Names {
			add(name)
		}
	case *ast.FunctionDecl:
		add(n.Fn.Name)
	case *ast.BlockStmt:
		for _, b := range n.Body {
			collectDecls(b, add)
		}
	case *ast.IfStmt:
		collectDecls(n.Then, add)
		if n.Else != nil {
			collectDecls(n.Else, add)
		}
	case *ast.WhileStmt:
		collectDecls(n.Body, add)
	case *ast.DoWhileStmt:
		collectDecls(n.Body, add)
	case *ast.ForStmt:
		if n.Init != nil {
			collectDecls(n.Init, add)
		}
		collectDecls(n.Body, add)
	case *ast.SwitchStmt:
		for _, cs := range n.Cases {
			for _, st := range cs.Body {
				collectDecls(st, add)
			}
		}
	}
}

func (r *resolution) stmt(s ast.Stmt, in *fnInfo) {
	switch n := s.(type) {
	case *ast.VarDecl:
		for _, init := range n.Inits {
			if init != nil {
				r.expr(init, in)
			}
		}
	case *ast.FunctionDecl:
		r.function(n.Fn, in)
	case *ast.ExprStmt:
		r.expr(n.X, in)
	case *ast.BlockStmt:
		for _, b := range n.Body {
			r.stmt(b, in)
		}
	case *ast.IfStmt:
		r.expr(n.Cond, in)
		r.stmt(n.Then, in)
		if n.Else != nil {
			r.stmt(n.Else, in)
		}
	case *ast.WhileStmt:
		r.expr(n.Cond, in)
		r.stmt(n.Body, in)
	case *ast.DoWhileStmt:
		r.stmt(n.Body, in)
		r.expr(n.Cond, in)
	case *ast.ForStmt:
		if n.Init != nil {
			r.stmt(n.Init, in)
		}
		if n.Cond != nil {
			r.expr(n.Cond, in)
		}
		if n.Post != nil {
			r.expr(n.Post, in)
		}
		r.stmt(n.Body, in)
	case *ast.SwitchStmt:
		r.expr(n.Disc, in)
		for _, cs := range n.Cases {
			if cs.Test != nil {
				r.expr(cs.Test, in)
			}
			for _, st := range cs.Body {
				r.stmt(st, in)
			}
		}
	case *ast.ReturnStmt:
		if n.X != nil {
			r.expr(n.X, in)
		}
	case *ast.BreakStmt, *ast.ContinueStmt:
	}
}

func (r *resolution) expr(e ast.Expr, in *fnInfo) {
	switch n := e.(type) {
	case *ast.Ident:
		r.markCapture(n.Name, in)
	case *ast.ArrayLit:
		for _, el := range n.Elems {
			r.expr(el, in)
		}
	case *ast.ObjectLit:
		for _, v := range n.Values {
			r.expr(v, in)
		}
	case *ast.FunctionLiteral:
		r.function(n, in)
	case *ast.Unary:
		r.expr(n.X, in)
	case *ast.Update:
		r.expr(n.X, in)
	case *ast.Binary:
		r.expr(n.L, in)
		r.expr(n.R, in)
	case *ast.Logical:
		r.expr(n.L, in)
		r.expr(n.R, in)
	case *ast.Assign:
		r.expr(n.Target, in)
		r.expr(n.Value, in)
	case *ast.Conditional:
		r.expr(n.Cond, in)
		r.expr(n.A, in)
		r.expr(n.B, in)
	case *ast.Member:
		r.expr(n.X, in)
	case *ast.Index:
		r.expr(n.X, in)
		r.expr(n.I, in)
	case *ast.Call:
		r.expr(n.Callee, in)
		for _, a := range n.Args {
			r.expr(a, in)
		}
	}
}

// markCapture marks a local captured when referenced across a function
// boundary, and pins both ends of the capture to the lower tiers.
func (r *resolution) markCapture(name string, in *fnInfo) {
	depth := 0
	for cur := in; cur != nil; cur = cur.parent {
		if li, ok := cur.locals[name]; ok {
			if depth > 0 {
				li.captured = true
				cur.uses = true
				in.uses = true
			}
			return
		}
		depth++
	}
}
