package bytecode

import (
	"strings"
	"testing"

	"nomap/internal/parser"
	"nomap/internal/value"
)

// compileNoFuse compiles without the peephole pass (the seed's codegen).
func compileNoFuse(t *testing.T, src string) *Function {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn, err := CompileNoFuse(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return fn
}

// TestFusionFires compiles sources and asserts the expected superinstructions
// appear in (and absent mnemonics stay out of) the disassembly.
func TestFusionFires(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		fn     string
		want   []string // substrings that must appear
		absent []string // substrings that must not appear
	}{
		{
			name: "addk",
			src:  `function f(x) { return x + 1; }`,
			fn:   "f",
			want: []string{"addk"},
			// The constant operand moved into the instruction; no load
			// remains.
			absent: []string{"ldc"},
		},
		{
			name:   "subk",
			src:    `function f(x) { return x - 2; }`,
			fn:     "f",
			want:   []string{"subk"},
			absent: []string{"ldc"},
		},
		{
			name:   "mulk",
			src:    `function f(x) { return x * 3; }`,
			fn:     "f",
			want:   []string{"mulk"},
			absent: []string{"ldc"},
		},
		{
			name: "lhs const not fused",
			// Only RHS-constant forms fuse (Add is not commutative for
			// strings); a constant left operand keeps the generic sequence.
			src:    `function f(x) { return 1 - x; }`,
			fn:     "f",
			want:   []string{"ldc", "sub "},
			absent: []string{"subk"},
		},
		{
			name: "incr and compare-branch in for loop",
			src: `function f(n) {
			  var s = 0;
			  for (var i = 0; i < n; i++) s = s + i;
			  return s;
			}`,
			fn:   "f",
			want: []string{"incr", "cmpjf", "lt r"},
		},
		{
			name: "const compare-branch in while loop",
			src: `function f() {
			  var i = 0;
			  while (i < 10) i++;
			  return i;
			}`,
			fn:   "f",
			want: []string{"cmpkjf", "incr"},
		},
		{
			name: "decrement",
			src: `function f(n) {
			  while (n > 0) n--;
			  return n;
			}`,
			fn:   "f",
			want: []string{"incr", "-1"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			main := compile(t, tc.src)
			f := nested(t, main, tc.fn)
			dis := f.Disassemble()
			for _, w := range tc.want {
				if !strings.Contains(dis, w) {
					t.Errorf("disassembly missing %q:\n%s", w, dis)
				}
			}
			for _, a := range tc.absent {
				if strings.Contains(dis, a) {
					t.Errorf("disassembly must not contain %q:\n%s", a, dis)
				}
			}
		})
	}
}

// TestNoFuseAcrossJumpTarget hand-crafts a function whose add instruction is
// itself a jump target: the ldc/add pair straddles a basic-block boundary, so
// the peephole must leave it alone even though the instructions are adjacent.
func TestNoFuseAcrossJumpTarget(t *testing.T) {
	fn := &Function{
		Name:      "t",
		NumLocals: 2,
		NumRegs:   4,
		Consts:    []value.Value{value.Int(1)},
		Code: []Instr{
			{Op: OpLoadConst, A: 2, B: 0},  // 0: ldc r2, #1
			{Op: OpAdd, A: 3, B: 0, C: 2},  // 1: add r3, r0, r2   <- jump target
			{Op: OpMove, A: 1, B: 3},       // 2: mov r1, r3
			{Op: OpJumpIfTrue, A: 1, B: 1}, // 3: jt r1, @1
			{Op: OpReturn, A: 1},           // 4: ret r1
		},
	}
	Fuse(fn)
	if fn.Code[0].Op != OpLoadConst || fn.Code[1].Op != OpAdd {
		t.Errorf("fusion across a block boundary:\n%s", fn.Disassemble())
	}
}

// TestNoFuseLiveConstTemp hand-crafts a function where the constant's temp
// register is read again after the add: eliminating the load would change the
// later read, so the peephole must not fire.
func TestNoFuseLiveConstTemp(t *testing.T) {
	fn := &Function{
		Name:      "t",
		NumLocals: 2,
		NumRegs:   4,
		Consts:    []value.Value{value.Int(1)},
		Code: []Instr{
			{Op: OpLoadConst, A: 2, B: 0}, // 0: ldc r2, #1
			{Op: OpAdd, A: 3, B: 0, C: 2}, // 1: add r3, r0, r2
			{Op: OpAdd, A: 1, B: 3, C: 2}, // 2: add r1, r3, r2  (r2 still live)
			{Op: OpReturn, A: 1},          // 3: ret r1
		},
	}
	Fuse(fn)
	if fn.Code[0].Op != OpLoadConst {
		t.Errorf("fusion eliminated a live constant temp:\n%s", fn.Disassemble())
	}
}

// TestNoFuseNamedLocalTemp: patterns may only eliminate expression temps
// (registers >= NumLocals). A named local holding the constant stays: deopt
// materializes named locals, so their contents are observable.
func TestNoFuseNamedLocalTemp(t *testing.T) {
	fn := &Function{
		Name:      "t",
		NumLocals: 3, // r2 is a named local, not a temp
		NumRegs:   4,
		Consts:    []value.Value{value.Int(1)},
		Code: []Instr{
			{Op: OpLoadConst, A: 2, B: 0}, // 0: ldc r2, #1   (named local!)
			{Op: OpAdd, A: 3, B: 0, C: 2}, // 1: add r3, r0, r2
			{Op: OpMove, A: 1, B: 3},      // 2: mov r1, r3
			{Op: OpReturn, A: 1},          // 3: ret r1
		},
	}
	Fuse(fn)
	if fn.Code[0].Op != OpLoadConst {
		t.Errorf("fusion eliminated a named local:\n%s", fn.Disassemble())
	}
}

// TestFusionRemapsJumps: every jump in fused code must land inside the code
// array, and the loop in a fused function must still execute correctly at the
// bytecode level (targets remapped onto the shifted pcs).
func TestFusionRemapsJumps(t *testing.T) {
	main := compile(t, `
function f(n) {
  var s = 0;
  for (var i = 0; i < n; i++) {
    if (i == 3) continue;
    if (i > 40) break;
    s = s + i;
  }
  return s;
}`)
	f := nested(t, main, "f")
	for pc, in := range f.Code {
		check := func(target int32) {
			if target < 0 || int(target) > len(f.Code) {
				t.Errorf("pc %d: jump target %d out of range 0..%d", pc, target, len(f.Code))
			}
		}
		switch in.Op {
		case OpJump:
			check(in.A)
		case OpJumpIfTrue, OpJumpIfFalse:
			check(in.B)
		case OpCmpJF, OpCmpJT, OpCmpKJF, OpCmpKJT:
			check(in.C)
		}
	}
}

// TestFusionShrinksCode: the fused stream must be strictly shorter than the
// seed codegen for fusable sources, and identical for sources with nothing
// to fuse.
func TestFusionShrinksCode(t *testing.T) {
	src := `function f(n) { var s = 0; for (var i = 0; i < n; i++) s = s + 1; return s; }`
	fused := nested(t, compile(t, src), "f")
	plain := nested(t, compileNoFuse(t, src), "f")
	if len(fused.Code) >= len(plain.Code) {
		t.Errorf("fusion did not shrink code: fused=%d plain=%d", len(fused.Code), len(plain.Code))
	}

	inert := `function g(a, b) { return a + b; }`
	fusedG := nested(t, compile(t, inert), "g")
	plainG := nested(t, compileNoFuse(t, inert), "g")
	if len(fusedG.Code) != len(plainG.Code) {
		t.Errorf("nothing to fuse, but code changed: fused=%d plain=%d", len(fusedG.Code), len(plainG.Code))
	}
}

// TestCompileNoFuseHasNoSuperinstructions: the A/B baseline really is the
// seed's one-op-per-step stream.
func TestCompileNoFuseHasNoSuperinstructions(t *testing.T) {
	main := compileNoFuse(t, `
function f(n) {
  var s = 0;
  for (var i = 0; i < n; i++) s = s + 1;
  return s;
}`)
	var walk func(fn *Function)
	walk = func(fn *Function) {
		for pc, in := range fn.Code {
			if in.Op.IsFused() {
				t.Errorf("%s pc %d: fused op %v in NoFuse output", fn.Name, pc, in.Op)
			}
		}
		for _, nested := range fn.Funcs {
			walk(nested)
		}
	}
	walk(main)
}
