// Package bytecode defines the register-based bytecode shared by the
// Interpreter and Baseline tiers, and the compiler from AST to bytecode.
//
// The bytecode register file is the canonical deoptimization state: every
// Stack Map Point in DFG/FTL code maps optimized values back to bytecode
// registers plus a pc, and on-stack replacement materializes a frame here
// (paper §II-B).
package bytecode

import (
	"fmt"

	"nomap/internal/value"
)

// Op is a bytecode opcode.
type Op uint8

const (
	OpNop Op = iota

	// Data movement. A=dst.
	OpLoadConst // B=const pool index
	OpLoadUndef
	OpMove // B=src

	// Binary operators: A=dst, B=lhs, C=rhs. These are the "generic" ops the
	// Baseline tier implements with runtime calls covering every corner case.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpBitAnd
	OpBitOr
	OpBitXor
	OpShl
	OpShr
	OpUShr
	OpLess
	OpLessEq
	OpGreater
	OpGreaterEq
	OpEq
	OpNeq
	OpStrictEq
	OpStrictNeq

	// Unary operators: A=dst, B=src.
	OpNeg
	OpNot
	OpBitNot
	OpTypeof
	OpToNumber

	// Control flow.
	OpJump        // A=target pc
	OpJumpIfTrue  // A=cond, B=target
	OpJumpIfFalse // A=cond, B=target
	OpReturn      // A=src

	// Calls: arguments occupy registers [C, C+D).
	OpCall       // A=dst, B=callee reg
	OpCallMethod // A=dst, B=receiver reg, C=argStart, D=argc, E=name index
	OpNew        // A=dst, B=callee reg

	// Object model.
	OpNewObject // A=dst
	OpNewArray  // A=dst, B=initial length (immediate)
	OpGetProp   // A=dst, B=obj, C=name index, D=IC slot
	OpSetProp   // A=obj, B=name index, C=src, D=IC slot
	OpGetElem   // A=dst, B=obj, C=index reg
	OpSetElem   // A=obj, B=index reg, C=src
	OpSetElemI  // A=obj, B=immediate index, C=src (array literals)
	OpGetGlobal // A=dst, B=name index, C=IC slot
	OpSetGlobal // A=name index, B=src, C=IC slot

	// Closures.
	OpGetCell     // A=dst, B=depth, C=cell index
	OpSetCell     // A=depth, B=cell index, C=src
	OpMakeClosure // A=dst, B=nested function index

	// Fused superinstructions, produced only by the peephole pass (Fuse) —
	// codegen never emits them directly. Each is semantically identical to
	// the instruction sequence it replaced, at a single dispatch.
	OpAddK // A=dst, B=src, C=const pool index: dst = src + consts[C]
	OpSubK // A=dst, B=src, C=const pool index: dst = src - consts[C]
	OpMulK // A=dst, B=src, C=const pool index: dst = src * consts[C]
	OpIncr // A=reg, B=delta (+1/-1): reg = ToNumber(reg) + delta
	// Compare-and-branch: the compare's boolean register was proven dead, so
	// the fused form produces no value. D holds the comparison opcode.
	OpCmpJF  // A=lhs, B=rhs reg, C=target, D=compare op: jump when false
	OpCmpJT  // A=lhs, B=rhs reg, C=target, D=compare op: jump when true
	OpCmpKJF // A=lhs, B=const pool index, C=target, D=compare op
	OpCmpKJT // A=lhs, B=const pool index, C=target, D=compare op

	numOps
)

var opNames = [numOps]string{
	OpNop: "nop", OpLoadConst: "ldc", OpLoadUndef: "ldundef", OpMove: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpBitAnd: "and", OpBitOr: "or", OpBitXor: "xor", OpShl: "shl", OpShr: "shr",
	OpUShr: "ushr", OpLess: "lt", OpLessEq: "le", OpGreater: "gt",
	OpGreaterEq: "ge", OpEq: "eq", OpNeq: "ne", OpStrictEq: "seq",
	OpStrictNeq: "sne", OpNeg: "neg", OpNot: "not", OpBitNot: "bnot",
	OpTypeof: "typeof", OpToNumber: "tonum", OpJump: "jmp",
	OpJumpIfTrue: "jt", OpJumpIfFalse: "jf", OpReturn: "ret", OpCall: "call",
	OpCallMethod: "callm", OpNew: "new", OpNewObject: "newobj",
	OpNewArray: "newarr", OpGetProp: "getprop", OpSetProp: "setprop",
	OpGetElem: "getelem", OpSetElem: "setelem", OpSetElemI: "setelemi",
	OpGetGlobal: "getg", OpSetGlobal: "setg", OpGetCell: "getcell",
	OpSetCell: "setcell", OpMakeClosure: "closure",
	OpAddK: "addk", OpSubK: "subk", OpMulK: "mulk", OpIncr: "incr",
	OpCmpJF: "cmpjf", OpCmpJT: "cmpjt", OpCmpKJF: "cmpkjf", OpCmpKJT: "cmpkjt",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsBinary reports whether the op is a two-operand arithmetic/comparison op.
func (o Op) IsBinary() bool { return o >= OpAdd && o <= OpStrictNeq }

// IsCompare reports whether the op produces a boolean comparison result.
func (o Op) IsCompare() bool { return o >= OpLess && o <= OpStrictNeq }

// IsFused reports whether the op is a peephole superinstruction.
func (o Op) IsFused() bool { return o >= OpAddK && o <= OpCmpKJT }

// IsCmpBranch reports whether the op is a fused compare-and-branch.
func (o Op) IsCmpBranch() bool { return o >= OpCmpJF && o <= OpCmpKJT }

// Instr is one bytecode instruction. Operand meaning depends on Op.
type Instr struct {
	Op   Op
	A    int32
	B    int32
	C    int32
	D    int32
	E    int32
	Line int32 // source line for diagnostics
}

func (in Instr) String() string {
	switch in.Op {
	case OpNop, OpLoadUndef, OpNewObject:
		return fmt.Sprintf("%-8s r%d", in.Op, in.A)
	case OpJump:
		return fmt.Sprintf("%-8s @%d", in.Op, in.A)
	case OpJumpIfTrue, OpJumpIfFalse:
		return fmt.Sprintf("%-8s r%d @%d", in.Op, in.A, in.B)
	case OpReturn:
		return fmt.Sprintf("%-8s r%d", in.Op, in.A)
	case OpCallMethod:
		return fmt.Sprintf("%-8s r%d = r%d.[n%d](r%d..+%d)", in.Op, in.A, in.B, in.E, in.C, in.D)
	case OpCall, OpNew:
		return fmt.Sprintf("%-8s r%d = r%d(r%d..+%d)", in.Op, in.A, in.B, in.C, in.D)
	case OpAddK, OpSubK, OpMulK:
		return fmt.Sprintf("%-8s r%d, r%d, #%d", in.Op, in.A, in.B, in.C)
	case OpIncr:
		return fmt.Sprintf("%-8s r%d, %+d", in.Op, in.A, in.B)
	case OpCmpJF, OpCmpJT:
		return fmt.Sprintf("%-8s %s r%d, r%d @%d", in.Op, Op(in.D), in.A, in.B, in.C)
	case OpCmpKJF, OpCmpKJT:
		return fmt.Sprintf("%-8s %s r%d, #%d @%d", in.Op, Op(in.D), in.A, in.B, in.C)
	default:
		return fmt.Sprintf("%-8s r%d, %d, %d, %d", in.Op, in.A, in.B, in.C, in.D)
	}
}

// Function is a compiled function body.
type Function struct {
	Name      string
	NumParams int
	NumLocals int // locals (incl. params) occupy registers [0, NumLocals)
	NumRegs   int // full frame size including expression temporaries
	NumCells  int // closure cells provided by this function's environment
	NumICs    int // inline-cache slots referenced by the code

	Code   []Instr
	Consts []value.Value
	Names  []string    // property / global name pool
	Funcs  []*Function // nested function literals (OpMakeClosure targets)

	// UsesClosure pins the function to the lower tiers: it captures outer
	// variables, provides cells to inner functions, or contains nested
	// function literals.
	UsesClosure bool

	// ParamCells lists params that must be copied into cells on entry,
	// as (paramIndex, cellIndex) pairs.
	ParamCells [][2]int
}

// Disassemble renders the function for debugging and golden tests.
func (f *Function) Disassemble() string {
	s := fmt.Sprintf("function %s(params=%d locals=%d regs=%d cells=%d)\n",
		f.Name, f.NumParams, f.NumLocals, f.NumRegs, f.NumCells)
	for i, in := range f.Code {
		s += fmt.Sprintf("  %4d: %s\n", i, in)
	}
	return s
}
