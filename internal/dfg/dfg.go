// Package dfg is the third compiler tier (paper Figure 2): it builds
// speculative SSA from Baseline profiles and runs a light cleanup pipeline.
// Compared with FTL it lacks the LLVM-grade pass pipeline and instruction
// selection, which the machine models with higher per-op weights.
package dfg

import (
	"nomap/internal/bytecode"
	"nomap/internal/ir"
	"nomap/internal/opt"
	"nomap/internal/profile"
)

// Compile builds DFG-tier code for fn.
func Compile(fn *bytecode.Function, prof *profile.FunctionProfile) (*ir.Func, error) {
	return CompileInlining(fn, prof, nil)
}

// CompileInlining builds DFG-tier code for fn with speculative call inlining
// steered by the callee-profile resolver (nil disables inlining, reproducing
// Compile).
func CompileInlining(fn *bytecode.Function, prof *profile.FunctionProfile, profiles func(*bytecode.Function) *profile.FunctionProfile) (*ir.Func, error) {
	f, err := ir.Build(fn, prof)
	if err != nil {
		return nil, err
	}
	return finish(f, profiles), nil
}

// CompileOSR builds a DFG-tier OSR-entry artifact entering at loop header
// entryPC, with live state bound from the OSR frame's locals.
func CompileOSR(fn *bytecode.Function, prof *profile.FunctionProfile, entryPC int) (*ir.Func, error) {
	return CompileOSRInlining(fn, prof, entryPC, nil)
}

// CompileOSRInlining is CompileOSR with speculative call inlining (see
// CompileInlining).
func CompileOSRInlining(fn *bytecode.Function, prof *profile.FunctionProfile, entryPC int, profiles func(*bytecode.Function) *profile.FunctionProfile) (*ir.Func, error) {
	f, err := ir.BuildOSR(fn, prof, entryPC)
	if err != nil {
		return nil, err
	}
	return finish(f, profiles), nil
}

func finish(f *ir.Func, profiles func(*bytecode.Function) *profile.FunctionProfile) *ir.Func {
	if profiles != nil {
		// Flatten monomorphic direct calls before the cleanup passes so the
		// check-removal phases see across former call boundaries.
		ir.InlineCalls(f, ir.DefaultInlineOptions(profiles))
	}
	// The DFG tier runs local cleanups plus its check-removal phases:
	// TypeCheckHoisting (modelled directly) and IntegerCheckCombining
	// (modelled by the builder's block-local fact cache plus GVN) — both
	// limited by SMPs, as the paper observes (§III-A1).
	opt.HoistTypeChecks(f)
	opt.GVN(f)
	opt.DCE(f)
	return f
}
