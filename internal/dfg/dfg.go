// Package dfg is the third compiler tier (paper Figure 2): it builds
// speculative SSA from Baseline profiles and runs a light cleanup pipeline.
// Compared with FTL it lacks the LLVM-grade pass pipeline and instruction
// selection, which the machine models with higher per-op weights.
package dfg

import (
	"nomap/internal/bytecode"
	"nomap/internal/ir"
	"nomap/internal/opt"
	"nomap/internal/profile"
)

// Compile builds DFG-tier code for fn.
func Compile(fn *bytecode.Function, prof *profile.FunctionProfile) (*ir.Func, error) {
	return CompileInlining(fn, prof, nil, nil)
}

// CompileInlining builds DFG-tier code for fn with speculative call inlining
// steered by the callee-profile resolver (nil disables inlining, reproducing
// Compile). demote, when non-nil, selects dispatch sites whose plans are
// dropped to the generic path (the JIT threads the VM's DisableIC switch
// through here; the governor's demote set only applies at the FTL tier).
func CompileInlining(fn *bytecode.Function, prof *profile.FunctionProfile, profiles func(*bytecode.Function) *profile.FunctionProfile, demote func(pc int, path string) bool) (*ir.Func, error) {
	f, err := ir.Build(fn, prof)
	if err != nil {
		return nil, err
	}
	return finish(f, profiles, demote), nil
}

// CompileOSR builds a DFG-tier OSR-entry artifact entering at loop header
// entryPC, with live state bound from the OSR frame's locals.
func CompileOSR(fn *bytecode.Function, prof *profile.FunctionProfile, entryPC int) (*ir.Func, error) {
	return CompileOSRInlining(fn, prof, entryPC, nil, nil)
}

// CompileOSRInlining is CompileOSR with speculative call inlining and
// dispatch demotion (see CompileInlining).
func CompileOSRInlining(fn *bytecode.Function, prof *profile.FunctionProfile, entryPC int, profiles func(*bytecode.Function) *profile.FunctionProfile, demote func(pc int, path string) bool) (*ir.Func, error) {
	f, err := ir.BuildOSR(fn, prof, entryPC)
	if err != nil {
		return nil, err
	}
	return finish(f, profiles, demote), nil
}

func finish(f *ir.Func, profiles func(*bytecode.Function) *profile.FunctionProfile, demote func(pc int, path string) bool) *ir.Func {
	// Lower polymorphic dispatch plans before everything else. The DFG tier
	// has no governor demote set of its own (a megamorphic site never grows
	// a plan, and persistent dispatch misses surface after promotion to
	// FTL); demote is only ever the VM-level DisableIC switch here.
	ir.ExpandDispatch(f, demote)
	if profiles != nil {
		// Flatten monomorphic direct calls before the cleanup passes so the
		// check-removal phases see across former call boundaries.
		ir.InlineCalls(f, ir.DefaultInlineOptions(profiles))
	}
	// The DFG tier runs local cleanups plus its check-removal phases:
	// TypeCheckHoisting (modelled directly) and IntegerCheckCombining
	// (modelled by the builder's block-local fact cache plus GVN) — both
	// limited by SMPs, as the paper observes (§III-A1).
	opt.HoistTypeChecks(f)
	opt.GVN(f)
	opt.DCE(f)
	return f
}
