package dfg_test

import (
	"testing"

	"nomap/internal/bytecode"
	"nomap/internal/dfg"
	"nomap/internal/harness"
	"nomap/internal/ir"
	"nomap/internal/jit"
	"nomap/internal/parser"
	"nomap/internal/profile"
	"nomap/internal/value"
	"nomap/internal/vm"
)

// The DFG tier (paper Figure 2) sits between Baseline and FTL: speculative
// SSA with local cleanups, but no transaction formation and no SMP-removing
// phases — every check keeps a deopt recovery path, which is exactly what
// limits its optimization scope (§III-A1). These tests pin that contract and
// the tier-transfer behaviour around it.

const hotSrc = `
var a = [];
for (var i = 0; i < 16; i++) a[i] = i * 3;
var o = {acc: 0};
function run(n) {
  var s = 0;
  for (var i = 0; i < n; i++) {
    s = (s + a[i % 16]) | 0;
    o.acc = o.acc + 1;
  }
  return s + o.acc;
}
`

// compileHot drives a real engine until run() reaches the DFG tier and
// captures the compiled IR through the backend's pass hook.
func compileHot(t *testing.T, arch vm.Arch) []*ir.Func {
	t.Helper()
	cfg := vm.DefaultConfig()
	cfg.Arch = arch
	cfg.MaxTier = profile.TierDFG
	cfg.Policy = harness.FastPolicy()
	v := vm.New(cfg)
	backend := jit.Attach(v)
	var funcs []*ir.Func
	backend.SetPassHook(func(pass string, f *ir.Func) {
		if pass == "dfg" {
			funcs = append(funcs, f)
		}
	})
	if _, err := v.Run(hotSrc); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := v.CallGlobal("run", value.Int(32)); err != nil {
			t.Fatal(err)
		}
	}
	if v.Counters().DFGCalls == 0 {
		t.Fatal("run() never executed in the DFG tier")
	}
	if len(funcs) == 0 {
		t.Fatal("no DFG compilation captured")
	}
	return funcs
}

func TestCompiledCodeVerifies(t *testing.T) {
	for _, f := range compileHot(t, vm.ArchNoMap) {
		if err := ir.Verify(f); err != nil {
			t.Errorf("%s: %v", f.Name, err)
		}
	}
}

func TestNoTransactionFormation(t *testing.T) {
	// Transaction formation is FTL-only, even under transactional archs.
	for _, f := range compileHot(t, vm.ArchNoMap) {
		for _, b := range f.Blocks {
			for _, v := range b.Values {
				if v.Op == ir.OpTxBegin || v.Op == ir.OpTxEnd || v.Op == ir.OpTxTile {
					t.Errorf("%s: DFG code contains %v", f.Name, v.Op)
				}
			}
		}
	}
}

func TestEveryCheckKeepsItsSMP(t *testing.T) {
	// No DFG phase may strip a stack map point: a check without Deopt can
	// only recover by transactional abort, which the DFG tier cannot do.
	checks := 0
	for _, f := range compileHot(t, vm.ArchNoMap) {
		for _, b := range f.Blocks {
			for _, v := range b.Values {
				if v.Op.IsCheck() && !v.Free {
					checks++
					if v.Deopt == nil {
						t.Errorf("%s: %v (v%d) lost its stack map", f.Name, v.Op, v.ID)
					}
				}
			}
		}
	}
	if checks == 0 {
		t.Fatal("hot loop compiled without a single speculation check")
	}
}

func TestCompileDirect(t *testing.T) {
	// dfg.Compile on a cold profile (no feedback) must still produce
	// verifiable code: speculation is simply not attempted.
	prog, err := parser.Parse(hotSrc)
	if err != nil {
		t.Fatal(err)
	}
	top, err := bytecode.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	var runFn *bytecode.Function
	for _, fn := range top.Funcs {
		if fn.Name == "run" {
			runFn = fn
		}
	}
	if runFn == nil {
		t.Fatal("run not found in compiled unit")
	}
	f, err := dfg.Compile(runFn, profile.New(runFn))
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
}

// TestTierTransferDifferential checks the DFG tier end to end: results match
// the interpreter both in steady state and across a deopt-inducing type
// change, and execution actually transfers back up after the deopt.
func TestTierTransferDifferential(t *testing.T) {
	run := func(maxTier profile.Tier) ([]string, int64, int64) {
		cfg := vm.DefaultConfig()
		cfg.Arch = vm.ArchNoMap
		cfg.MaxTier = maxTier
		cfg.Policy = harness.FastPolicy()
		v := vm.New(cfg)
		jit.Attach(v)
		if _, err := v.Run(hotSrc); err != nil {
			t.Fatal(err)
		}
		var out []string
		call := func() {
			r, err := v.CallGlobal("run", value.Int(32))
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, r.ToStringValue())
		}
		for i := 0; i < 40; i++ {
			call()
		}
		// Poison the array: the next DFG execution must deopt, re-profile,
		// and the function must eventually tier back up.
		if _, err := v.Run(`a[3] = 0.25;`); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			call()
		}
		return out, v.Counters().DFGCalls, v.Counters().Deopts
	}
	want, _, _ := run(profile.TierInterp)
	got, dfgCalls, deopts := run(profile.TierDFG)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("call %d: DFG %q vs interp %q", i, got[i], want[i])
		}
	}
	if dfgCalls == 0 {
		t.Error("no DFG-tier calls executed")
	}
	if deopts == 0 {
		t.Error("type poison caused no deopt")
	}
	// After MaxDeopts the policy may pin the function lower, but with one
	// poison event it must return to the DFG tier for steady state.
	_, dfgCallsAfter, _ := run(profile.TierDFG)
	if dfgCallsAfter == 0 {
		t.Error("function never re-entered DFG tier after deopt")
	}
}
