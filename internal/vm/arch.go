package vm

// Arch selects the architecture configuration evaluated in the paper
// (Table II). It controls how the FTL tier forms transactions and which
// check optimizations run.
type Arch uint8

const (
	// ArchBase is unmodified JavaScriptCore: no transactions, SMPs remain,
	// and optimizations honour SMP barriers.
	ArchBase Arch = iota
	// ArchNoMapS inserts transactions and replaces SMPs with aborts; code
	// optimizations then work across the former SMPs.
	ArchNoMapS
	// ArchNoMapB adds bounds-check hoisting/sinking on monotonic induction
	// variables.
	ArchNoMapB
	// ArchNoMap (the proposed design) additionally removes overflow checks
	// using the Sticky Overflow Flag.
	ArchNoMap
	// ArchNoMapBC is the unrealistic best case: every check inside a
	// transaction is removed.
	ArchNoMapBC
	// ArchNoMapRTM runs the NoMap_B transformation on Intel RTM rules:
	// smaller capacity, read tracking, slow commits, and no SOF.
	ArchNoMapRTM
)

// String returns the paper's name for the configuration.
func (a Arch) String() string {
	switch a {
	case ArchBase:
		return "Base"
	case ArchNoMapS:
		return "NoMap_S"
	case ArchNoMapB:
		return "NoMap_B"
	case ArchNoMap:
		return "NoMap"
	case ArchNoMapBC:
		return "NoMap_BC"
	case ArchNoMapRTM:
		return "NoMap_RTM"
	}
	return "Arch(?)"
}

// AllArchs lists the six evaluated configurations in the paper's bar order.
var AllArchs = []Arch{ArchBase, ArchNoMapS, ArchNoMapB, ArchNoMap, ArchNoMapBC, ArchNoMapRTM}

// UsesTransactions reports whether the configuration wraps hot FTL loops in
// hardware transactions.
func (a Arch) UsesTransactions() bool { return a != ArchBase }

// CombinesBoundsChecks reports whether the bounds-check hoist/sink pass runs.
func (a Arch) CombinesBoundsChecks() bool {
	return a == ArchNoMapB || a == ArchNoMap || a == ArchNoMapBC || a == ArchNoMapRTM
}

// RemovesOverflowChecks reports whether the SOF-based overflow-check removal
// runs. RTM has no Sticky Overflow Flag (paper §VI-B), so it is excluded.
func (a Arch) RemovesOverflowChecks() bool { return a == ArchNoMap || a == ArchNoMapBC }

// RemovesAllChecks reports the unrealistic best-case configuration.
func (a Arch) RemovesAllChecks() bool { return a == ArchNoMapBC }

// HeavyweightHTM reports whether the Intel RTM rules apply.
func (a Arch) HeavyweightHTM() bool { return a == ArchNoMapRTM }
