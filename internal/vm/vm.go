// Package vm is the engine facade: it owns the global object, the shape
// table, per-function profiles, and the tier-up machinery that moves hot
// functions from the Interpreter through Baseline and DFG up to FTL
// (paper Figure 2). The NoMap configurations plug in here as FTL variants.
package vm

import (
	"errors"
	"fmt"

	"nomap/internal/bytecode"
	"nomap/internal/frame"
	"nomap/internal/htm"
	"nomap/internal/interp"
	"nomap/internal/parser"
	"nomap/internal/profile"
	"nomap/internal/stats"
	"nomap/internal/value"
)

// Config selects the engine behaviour for a run.
type Config struct {
	// MaxTier caps tier-up (Table I is measured by sweeping this).
	MaxTier profile.Tier
	// Policy sets tier-up thresholds.
	Policy profile.Policy
	// Arch selects the architecture configuration for the FTL tier
	// (Base, NoMap_S, NoMap_B, NoMap, NoMap_BC, NoMap_RTM). See arch.go.
	Arch Arch
	// MaxCallDepth bounds recursion (default 2500).
	MaxCallDepth int
	// RandomSeed seeds Math.random deterministically.
	RandomSeed uint64
	// DisableIC turns off the polymorphic-inline-cache subsystem: every
	// dispatch plan is dropped at expansion time and polymorphic sites keep
	// the generic runtime path. The A/B surface for measuring what dispatch
	// trees are worth, mirroring DisableInlining.
	DisableIC bool
	// DisableInlining turns off speculative call inlining in the DFG and FTL
	// tiers (the zero value leaves it on); the benchmark harness uses it to
	// measure the inliner's contribution.
	DisableInlining bool
	// DisableBoxing is the A/B surface for the NaN-boxed value pipeline: it
	// turns off the interpreter/Baseline boxed fast paths, compiles without
	// peephole superinstruction fusion, and makes the FTL memory model store
	// values at the fat two-word stride, reproducing the seed engine.
	DisableBoxing bool
}

// DefaultConfig runs the full tier stack on the unmodified Base architecture.
func DefaultConfig() Config {
	return Config{
		MaxTier:      profile.TierFTL,
		Policy:       profile.DefaultPolicy(),
		Arch:         ArchBase,
		MaxCallDepth: 2500,
		RandomSeed:   0x9E3779B97F4A7C15,
	}
}

// VM is one engine instance. Not safe for concurrent use — JavaScript is
// single-threaded, which is precisely why the paper can target a lightweight
// rollback-only HTM.
type VM struct {
	cfg      Config
	shapes   *value.ShapeTable
	globals  *value.Object
	counters stats.Counters
	profiles map[*bytecode.Function]*profile.FunctionProfile
	handles  *value.Handles

	jit JITBackend

	callDepth int
	rng       uint64

	// interrupt, when non-nil, is polled at every tier boundary (the single
	// Call path). A non-nil error cancels execution: it propagates out like
	// a runtime error, unwinding every tier. The serving pool uses it for
	// per-request deadlines.
	interrupt func() error

	// natives registers every builtin function in creation order. Because
	// installBuiltins is deterministic, the i-th native of one VM is the
	// analogue of the i-th native of any other — the identity the serving
	// layer uses to relocate compiled callee references between isolates.
	natives   []*value.Function
	nativeIDs map[*value.Function]int

	// closures records the first function object created for each bytecode
	// function. For top-level declarations (run once at setup) this is the
	// unique instance, which is what makes compiled-code relocation between
	// isolates of the same program sound.
	closures map[*bytecode.Function]*value.Function

	// Output collects print() lines so runs are checkable.
	Output []string
}

// JITBackend executes a function in a speculative tier (DFG/FTL). It is
// implemented by the jit package and injected to keep the dependency graph
// acyclic. Execute returns handled=false to decline (e.g. unsupported
// feature), in which case the VM falls back to Baseline.
type JITBackend interface {
	Execute(vm *VM, fn *value.Function, prof *profile.FunctionProfile, tier profile.Tier, args []value.Value) (res value.Value, handled bool, err error)
	// ExecuteOSR enters optimized code mid-execution: fr is a live bytecode
	// frame stopped at a hot loop header, and the backend compiles (or
	// reuses) an OSR artifact entering at that header, binds fr's locals to
	// it, and runs it to completion. handled=false declines (unsupported
	// region, governor veto, compile failure), in which case the frame
	// continues in the bytecode tiers untouched.
	ExecuteOSR(vm *VM, fr *frame.Frame, prof *profile.FunctionProfile, tier profile.Tier) (res value.Value, handled bool, err error)
	// InTransaction reports whether the backend currently has an open
	// hardware transaction (for cycle attribution of lower-tier code
	// called from inside one).
	InTransaction() bool
}

// New creates a VM.
func New(cfg Config) *VM {
	if cfg.MaxCallDepth == 0 {
		cfg.MaxCallDepth = 2500
	}
	if cfg.RandomSeed == 0 {
		cfg.RandomSeed = 0x9E3779B97F4A7C15
	}
	vm := &VM{cfg: cfg}
	vm.Reset()
	return vm
}

// Reset returns the VM to its freshly constructed state under its original
// configuration: a fresh shape table, global object, builtins, profiles, and
// output, with the RNG re-seeded from Config.RandomSeed and the call depth
// (bounded by Config.MaxCallDepth) cleared. A recycled isolate calls it so a
// reused VM is indistinguishable from a new one — including the RandomSeed
// and MaxCallDepth settings, which are part of cfg and survive verbatim.
func (vm *VM) Reset() {
	if vm.handles == nil {
		vm.handles = value.NewHandles()
	} else {
		vm.handles.Reset()
	}
	vm.shapes = value.NewShapeTable()
	vm.profiles = make(map[*bytecode.Function]*profile.FunctionProfile)
	vm.rng = vm.cfg.RandomSeed
	vm.callDepth = 0
	vm.counters.Reset()
	vm.Output = nil
	vm.natives = nil
	vm.nativeIDs = make(map[*value.Function]int)
	vm.closures = make(map[*bytecode.Function]*value.Function)
	vm.globals = value.NewObject(vm.shapes)
	vm.installBuiltins()
}

// SetJIT injects the speculative-tier backend.
func (vm *VM) SetJIT(j JITBackend) { vm.jit = j }

// Config returns the VM's configuration.
func (vm *VM) Config() Config { return vm.cfg }

// Counters returns the measurement sink.
func (vm *VM) Counters() *stats.Counters { return &vm.counters }

// ResetCounters zeroes measurements (after warm-up, before the measured run).
func (vm *VM) ResetCounters() { vm.counters.Reset() }

// Shapes returns the shape table.
func (vm *VM) Shapes() *value.ShapeTable { return vm.shapes }

// Handles returns the isolate's handle slab: the indirection table that lets
// NaN-boxed registers reference strings and objects by index.
func (vm *VM) Handles() *value.Handles { return vm.handles }

// Boxing reports whether the NaN-boxed fast paths are enabled.
func (vm *VM) Boxing() bool { return !vm.cfg.DisableBoxing }

// Globals returns the global object.
func (vm *VM) Globals() *value.Object { return vm.globals }

// ProfileFor returns (allocating on first use) the profile of fn.
func (vm *VM) ProfileFor(fn *bytecode.Function) *profile.FunctionProfile {
	p, ok := vm.profiles[fn]
	if !ok {
		p = profile.New(fn)
		vm.profiles[fn] = p
	}
	return p
}

// SetProfile replaces fn's profile wholesale. The warm-start facility uses it
// to install a snapshot's post-warmup feedback into a fresh isolate.
func (vm *VM) SetProfile(fn *bytecode.Function, p *profile.FunctionProfile) {
	vm.profiles[fn] = p
}

// EachProfile visits every allocated function profile (iteration order is
// unspecified; callers needing determinism must sort).
func (vm *VM) EachProfile(f func(*bytecode.Function, *profile.FunctionProfile)) {
	for fn, p := range vm.profiles {
		f(fn, p)
	}
}

// SetInterrupt installs (or, with nil, removes) the tier-boundary poll used
// to cancel execution: Call checks it on entry, so a pending cancellation
// takes effect at the next tier transition rather than mid-loop.
func (vm *VM) SetInterrupt(f func() error) { vm.interrupt = f }

// NativeID returns the creation-order identity of a builtin function, which
// is stable across VMs (installBuiltins is deterministic).
func (vm *VM) NativeID(f *value.Function) (int, bool) {
	id, ok := vm.nativeIDs[f]
	return id, ok
}

// NativeByID returns the builtin with the given creation-order identity.
func (vm *VM) NativeByID(id int) *value.Function {
	if id < 0 || id >= len(vm.natives) {
		return nil
	}
	return vm.natives[id]
}

// FunctionFor returns this VM's canonical function object for a bytecode
// function: the first closure created over it (for top-level declarations,
// the only one). It returns nil when the program defining code has not run
// in this VM.
func (vm *VM) FunctionFor(code *bytecode.Function) *value.Function {
	return vm.closures[code]
}

// InTransaction reports whether a hardware transaction is currently open.
func (vm *VM) InTransaction() bool {
	return vm.jit != nil && vm.jit.InTransaction()
}

// CompileSource parses and compiles a program to its top-level function,
// including the peephole superinstruction fusion pass.
func CompileSource(src string) (*bytecode.Function, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return bytecode.Compile(prog)
}

// CompileSourceNoFuse compiles without superinstruction fusion — the exact
// seed codegen, used as the DisableBoxing A/B baseline.
func CompileSourceNoFuse(src string) (*bytecode.Function, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return bytecode.CompileNoFuse(prog)
}

// Run executes a complete program source and returns the value of the last
// global named "result" if defined, else undefined. Output from print() is
// collected in vm.Output.
func (vm *VM) Run(src string) (value.Value, error) {
	compile := CompileSource
	if vm.cfg.DisableBoxing {
		compile = CompileSourceNoFuse
	}
	main, err := compile(src)
	if err != nil {
		return value.Undefined(), err
	}
	return vm.RunMain(main)
}

// RunMain executes a previously compiled top-level function.
func (vm *VM) RunMain(main *bytecode.Function) (value.Value, error) {
	fr := frame.New(main, nil, nil, vm.handles)
	if _, err := interp.Exec(vm, fr, profile.TierInterp); err != nil {
		return value.Undefined(), err
	}
	if vm.globals.Has("result") {
		return vm.globals.Get("result"), nil
	}
	return value.Undefined(), nil
}

// CallGlobal invokes a global function by name (the harness entry point:
// benchmarks define a run() function called once per iteration).
func (vm *VM) CallGlobal(name string, args ...value.Value) (value.Value, error) {
	f := vm.globals.Get(name)
	if !f.IsCallable() {
		return value.Undefined(), fmt.Errorf("global %q is not a function", name)
	}
	return vm.Call(f.Object().Fn, value.Undefined(), args)
}

var errCallDepth = errors.New("maximum call depth exceeded")

// Call invokes a function through the tiering machinery. This is the single
// call path: every tier and every builtin routes function calls here.
func (vm *VM) Call(fn *value.Function, this value.Value, args []value.Value) (value.Value, error) {
	if vm.interrupt != nil {
		if err := vm.interrupt(); err != nil {
			return value.Undefined(), err
		}
	}
	if vm.callDepth >= vm.cfg.MaxCallDepth {
		return value.Undefined(), errCallDepth
	}
	vm.callDepth++
	defer func() { vm.callDepth-- }()

	if fn.IsNative() {
		if fn.Irrevocable && vm.InTransaction() {
			return value.Undefined(), htm.ErrIrrevocable
		}
		vm.counters.AddInstr(stats.NoFTL, nativeCallCost)
		vm.counters.AddCycles(nativeCallCost, vm.InTransaction())
		return fn.Native(this, args)
	}

	bcFn, ok := fn.Code.(*bytecode.Function)
	if !ok {
		return value.Undefined(), fmt.Errorf("function %q has no code", fn.Name)
	}
	prof := vm.ProfileFor(bcFn)
	prof.InvocationCount++
	tier := vm.cfg.Policy.TierFor(prof, vm.cfg.MaxTier)

	if tier >= profile.TierDFG && vm.jit != nil {
		res, handled, err := vm.jit.Execute(vm, fn, prof, tier, args)
		if handled || err != nil {
			return res, err
		}
		tier = profile.TierBaseline
	} else if tier >= profile.TierDFG {
		tier = profile.TierBaseline
	}

	env := value.NewEnvironment(fn.Env, bcFn.NumCells)
	fr := frame.New(bcFn, env, args, vm.handles)
	return interp.Exec(vm, fr, tier)
}

// OSREntry is the bytecode tiers' hot-loop hook: every 64 back edges the
// executor offers its live frame here. The VM consults the tier-up policy
// with the frame's current profile; if the function has outgrown its tier,
// the frame either enters an optimized OSR artifact through the JIT backend
// (done=true: the backend ran it to completion, including any deopt-resume
// continuation) or escalates to Baseline in place so type feedback accrues
// before an optimizing OSR compile is attempted.
//
// An OSR artifact runs to function completion, so entering one forfeits any
// later mid-loop promotion: a loop that OSR-entered DFG would be stranded
// below FTL for its whole (by definition, long) remaining run. OSR entry
// therefore waits for the function's tier ceiling — the loop keeps accruing
// feedback in Baseline through the DFG window and jumps straight to the top
// tier. With MaxTier = DFG the ceiling is the DFG OSR artifact itself.
func (vm *VM) OSREntry(fr *frame.Frame, tier profile.Tier) (value.Value, bool, profile.Tier, error) {
	prof := vm.ProfileFor(fr.Fn)
	target := vm.cfg.Policy.TierFor(prof, vm.cfg.MaxTier)
	if target <= tier {
		return value.Undefined(), false, tier, nil
	}
	ceiling := vm.cfg.MaxTier
	if ceiling > profile.TierFTL {
		ceiling = profile.TierFTL
	}
	if target >= profile.TierDFG && target == ceiling && vm.jit != nil {
		res, handled, err := vm.jit.ExecuteOSR(vm, fr, prof, target)
		if handled || err != nil {
			return res, handled, tier, err
		}
	}
	// The optimizing tiers declined (or the target is Baseline): escalate
	// the running frame to Baseline without restarting it.
	if tier < profile.TierBaseline {
		tier = profile.TierBaseline
	}
	return value.Undefined(), false, tier, nil
}

// Construct implements `new fn(args)`.
func (vm *VM) Construct(fn *value.Function, args []value.Value) (value.Value, error) {
	if fn.IsNative() {
		// Builtin constructors (Array, Object) construct directly.
		return fn.Native(value.Undefined(), args)
	}
	obj := value.Obj(value.NewObject(vm.shapes))
	res, err := vm.Call(fn, obj, args)
	if err != nil {
		return value.Undefined(), err
	}
	if res.IsObject() {
		return res, nil
	}
	return obj, nil
}

// MakeClosure wraps a nested bytecode function with its defining environment.
func (vm *VM) MakeClosure(fn *bytecode.Function, env *value.Environment) value.Value {
	f := &value.Function{
		Name:        fn.Name,
		NumParams:   fn.NumParams,
		Code:        fn,
		Env:         env,
		UsesClosure: fn.UsesClosure,
	}
	if _, ok := vm.closures[fn]; !ok {
		vm.closures[fn] = f
	}
	return value.Obj(value.NewFunctionObject(vm.shapes, f))
}

// nativeCallCost approximates the C++ runtime entry/exit sequence.
const nativeCallCost = 20

// Interface conformance: the VM is the Host for the bytecode tiers.
var _ interp.Host = (*VM)(nil)
