package vm

import (
	"math"
	"strings"
	"testing"

	"nomap/internal/profile"
	"nomap/internal/value"
)

func run(t *testing.T, src string) value.Value {
	t.Helper()
	vm := New(DefaultConfig())
	v, err := vm.Run(src)
	if err != nil {
		t.Fatalf("Run: %v\nsource:\n%s", err, src)
	}
	return v
}

func runExpect(t *testing.T, src string, want float64) {
	t.Helper()
	v := run(t, src)
	if got := v.ToNumber(); got != want {
		t.Errorf("result = %v, want %v\nsource:\n%s", got, want, src)
	}
}

func TestArithmeticProgram(t *testing.T) {
	runExpect(t, "var result = 1 + 2 * 3 - 4 / 2;", 5)
	runExpect(t, "var result = (1 + 2) * 3;", 9)
	runExpect(t, "var result = 7 % 3;", 1)
	runExpect(t, "var result = 2 * 3 + 10 % 4;", 8)
}

func TestVariablesAndControlFlow(t *testing.T) {
	runExpect(t, `
var s = 0;
for (var i = 0; i < 10; i++) { s += i; }
var result = s;`, 45)
	runExpect(t, `
var s = 0, i = 0;
while (i < 5) { s += i * i; i++; }
var result = s;`, 30)
	runExpect(t, `
var n = 0;
do { n++; } while (n < 3);
var result = n;`, 3)
	runExpect(t, `
var x = 10, r;
if (x > 5) { r = 1; } else { r = 2; }
var result = r;`, 1)
}

func TestBreakContinue(t *testing.T) {
	runExpect(t, `
var s = 0;
for (var i = 0; i < 100; i++) {
  if (i % 2 == 0) continue;
  if (i > 10) break;
  s += i;
}
var result = s;`, 1+3+5+7+9)
}

func TestFunctionsAndRecursion(t *testing.T) {
	runExpect(t, `
function fib(n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
var result = fib(15);`, 610)
	runExpect(t, `
function add(a, b) { return a + b; }
var result = add(add(1, 2), add(3, 4));`, 10)
}

func TestClosures(t *testing.T) {
	runExpect(t, `
function counter() {
  var n = 0;
  return function() { n = n + 1; return n; };
}
var c = counter();
c(); c();
var result = c();`, 3)
	runExpect(t, `
function makeAdder(k) { return function(x) { return x + k; }; }
var add5 = makeAdder(5);
var add7 = makeAdder(7);
var result = add5(1) + add7(2);`, 15)
}

func TestObjectsAndArrays(t *testing.T) {
	runExpect(t, `
var obj = {values: [1, 2, 3, 4], sum: 0};
var len = obj.values.length;
for (var idx = 0; idx < len; idx++) {
  obj.sum += obj.values[idx];
}
var result = obj.sum;`, 10)
	runExpect(t, `
var a = new Array(5);
for (var i = 0; i < 5; i++) a[i] = i * i;
var result = a[4];`, 16)
	runExpect(t, `
var a = [];
a[10] = 7;
var result = a.length + (a[3] === undefined ? 100 : 0);`, 111)
}

func TestArrayMethods(t *testing.T) {
	runExpect(t, `
var a = [3, 1, 2];
a.push(4);
a.sort(function(x, y) { return x - y; });
var result = a[0] * 1000 + a[3] * 100 + a.pop() * 10 + a.length;`, 1000+400+40+3)
	v := run(t, `var result = [1, 2, 3].join("-");`)
	if v.ToStringValue() != "1-2-3" {
		t.Errorf("join = %q", v)
	}
	runExpect(t, `var result = [5, 6, 7].indexOf(6);`, 1)
	runExpect(t, `var result = [1,2,3].slice(1).length;`, 2)
	runExpect(t, `
var a = [1,2,3];
a.reverse();
var result = a[0];`, 3)
}

func TestStringMethods(t *testing.T) {
	v := run(t, `var result = "hello".toUpperCase() + "WORLD".toLowerCase();`)
	if v.ToStringValue() != "HELLOworld" {
		t.Errorf("got %q", v)
	}
	runExpect(t, `var result = "abc".charCodeAt(1);`, 98)
	runExpect(t, `var result = "hello world".indexOf("world");`, 6)
	v = run(t, `var result = "one,two,three".split(",")[1];`)
	if v.ToStringValue() != "two" {
		t.Errorf("split = %q", v)
	}
	v = run(t, `var result = String.fromCharCode(72, 105);`)
	if v.ToStringValue() != "Hi" {
		t.Errorf("fromCharCode = %q", v)
	}
	runExpect(t, `var result = "hello".length;`, 5)
	v = run(t, `var result = "hello"[1];`)
	if v.ToStringValue() != "e" {
		t.Errorf("index = %q", v)
	}
}

func TestMathBuiltins(t *testing.T) {
	runExpect(t, `var result = Math.floor(3.7) + Math.ceil(3.2) + Math.abs(-5);`, 12)
	runExpect(t, `var result = Math.pow(2, 10);`, 1024)
	runExpect(t, `var result = Math.sqrt(144);`, 12)
	runExpect(t, `var result = Math.max(1, 9, 4) + Math.min(3, -2);`, 7)
	v := run(t, `var result = Math.sin(0) + Math.cos(0);`)
	if v.ToNumber() != 1 {
		t.Errorf("sin/cos = %v", v)
	}
}

func TestMathRandomDeterministic(t *testing.T) {
	src := `
var s = 0;
for (var i = 0; i < 100; i++) s += Math.random();
var result = s;`
	a := run(t, src).ToNumber()
	b := run(t, src).ToNumber()
	if a != b {
		t.Errorf("Math.random not deterministic across VMs: %v vs %v", a, b)
	}
	if a <= 0 || a >= 100 {
		t.Errorf("random sum out of range: %v", a)
	}
}

func TestIntegerOverflowPromotes(t *testing.T) {
	runExpect(t, `
var x = 2147483647;
var result = x + 1;`, 2147483648)
	runExpect(t, `
var x = 1;
for (var i = 0; i < 40; i++) x = x * 2;
var result = x;`, math.Pow(2, 40))
}

func TestGlobalsAcrossFunctions(t *testing.T) {
	runExpect(t, `
var total = 0;
function bump(n) { total += n; }
bump(3); bump(4);
var result = total;`, 7)
}

func TestPrintCapturesOutput(t *testing.T) {
	vm := New(DefaultConfig())
	if _, err := vm.Run(`print("a", 1); print("b");`); err != nil {
		t.Fatal(err)
	}
	if len(vm.Output) != 2 || vm.Output[0] != "a 1" || vm.Output[1] != "b" {
		t.Errorf("Output = %q", vm.Output)
	}
}

func TestCallGlobal(t *testing.T) {
	vm := New(DefaultConfig())
	if _, err := vm.Run(`function run(n) { return n * 2; }`); err != nil {
		t.Fatal(err)
	}
	v, err := vm.CallGlobal("run", value.Int(21))
	if err != nil {
		t.Fatal(err)
	}
	if v.ToNumber() != 42 {
		t.Errorf("run(21) = %v", v)
	}
	if _, err := vm.CallGlobal("nosuch"); err == nil {
		t.Error("expected error for missing global function")
	}
}

func TestTierUpToBaseline(t *testing.T) {
	vm := New(DefaultConfig())
	_, err := vm.Run(`
function hot(n) { var s = 0; for (var i = 0; i < n; i++) s += i; return s; }
var r = 0;
for (var k = 0; k < 20; k++) r = hot(100);
var result = r;`)
	if err != nil {
		t.Fatal(err)
	}
	c := vm.Counters()
	if c.BaselineOps == 0 {
		t.Error("expected Baseline execution after tier-up")
	}
	if c.InterpOps == 0 {
		t.Error("expected some interpreter execution before tier-up")
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []string{
		`var x = null; x.foo;`,
		`var x; x.foo;`,
		`var f = 5; f();`,
		`undefinedGlobal + 1;`,
		`var o = {}; o.missing();`,
	}
	for _, src := range cases {
		vm := New(DefaultConfig())
		if _, err := vm.Run(src); err == nil {
			t.Errorf("%q: expected runtime error", src)
		}
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	vm := New(DefaultConfig())
	_, err := vm.Run(`function f() { return f(); } f();`)
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Errorf("expected depth error, got %v", err)
	}
}

func TestTernaryAndLogical(t *testing.T) {
	runExpect(t, `var result = 1 < 2 ? 10 : 20;`, 10)
	runExpect(t, `var result = (0 || 7) + (3 && 4);`, 11)
	runExpect(t, `var x = 0; var result = x || "fallback" === "fallback" ? 1 : 0;`, 1)
}

func TestTypeofAndEquality(t *testing.T) {
	v := run(t, `var result = typeof 1 + typeof "s" + typeof undefined;`)
	if v.ToStringValue() != "numberstringundefined" {
		t.Errorf("typeof = %q", v)
	}
	runExpect(t, `var result = (1 == "1" ? 1 : 0) + (1 === "1" ? 10 : 0);`, 1)
	runExpect(t, `var result = (null == undefined ? 1 : 0) + (null === undefined ? 10 : 0);`, 1)
}

func TestBitwisePrograms(t *testing.T) {
	runExpect(t, `var result = (0xF0 | 0x0F) ^ 0xFF;`, 0)
	runExpect(t, `var result = (1 << 10) >> 2;`, 256)
	runExpect(t, `var result = -1 >>> 28;`, 15)
	runExpect(t, `var result = ~5;`, -6)
}

func TestUpdateExpressions(t *testing.T) {
	runExpect(t, `var i = 5; var a = i++; var result = a * 10 + i;`, 56)
	runExpect(t, `var i = 5; var a = ++i; var result = a * 10 + i;`, 66)
	runExpect(t, `var a = [1,2,3]; var i = 0; a[i++] = 9; var result = a[0] * 10 + i;`, 91)
	runExpect(t, `var o = {n: 1}; o.n++; ++o.n; var result = o.n;`, 3)
}

func TestNumberMethods(t *testing.T) {
	v := run(t, `var result = (255).toString(16);`)
	if v.ToStringValue() != "ff" {
		t.Errorf("toString(16) = %q", v)
	}
	v = run(t, `var result = (3.14159).toFixed(2);`)
	if v.ToStringValue() != "3.14" {
		t.Errorf("toFixed = %q", v)
	}
}

func TestParseIntFloat(t *testing.T) {
	runExpect(t, `var result = parseInt("42");`, 42)
	runExpect(t, `var result = parseInt("ff", 16);`, 255)
	runExpect(t, `var result = parseInt("0x10");`, 16)
	runExpect(t, `var result = parseFloat("3.5xyz" === "3.5xyz" ? "3.5" : "0");`, 3.5)
	v := run(t, `var result = isNaN(parseInt("zzz"));`)
	if !v.ToBoolean() {
		t.Error("parseInt(zzz) should be NaN")
	}
}

func TestNestedFunctionsPinnedToBaseline(t *testing.T) {
	vm := New(DefaultConfig())
	_, err := vm.Run(`
function outer() {
  var acc = 0;
  function inner(x) { acc += x; }
  for (var i = 0; i < 10; i++) inner(i);
  return acc;
}
var r = 0;
for (var k = 0; k < 700; k++) r = outer();
var result = r;`)
	if err != nil {
		t.Fatal(err)
	}
	// outer uses closures so it must never reach DFG/FTL.
	for fn, p := range vm.profiles {
		if fn.UsesClosure {
			if tier := vm.cfg.Policy.TierFor(p, profile.TierFTL); tier > profile.TierBaseline {
				t.Errorf("closure-using %s resolved to tier %v", fn.Name, tier)
			}
		}
	}
}

func TestConstructUserFunction(t *testing.T) {
	runExpect(t, `
function Point(x, y) { return {x: x, y: y}; }
var p = new Point(3, 4);
var result = p.x + p.y;`, 7)
}

func TestShadowingParamAndLocal(t *testing.T) {
	runExpect(t, `
var x = 100;
function f(x) { var y = x + 1; return y; }
var result = f(1) + x;`, 102)
}

func TestVarWithoutInitIsUndefined(t *testing.T) {
	runExpect(t, `var a; var result = (a === undefined) ? 1 : 0;`, 1)
	runExpect(t, `
function f() { var q; return q === undefined ? 1 : 0; }
var result = f();`, 1)
}

func TestHoistedFunctionCallableBeforeDecl(t *testing.T) {
	runExpect(t, `
var result = helper(4);
function helper(n) { return n * n; }`, 16)
}

func TestSwitchStatement(t *testing.T) {
	runExpect(t, `
function classify(n) {
  var r;
  switch (n % 4) {
  case 0: r = 100; break;
  case 1: r = 200; break;
  case 2: r = 300; break;
  default: r = 999;
  }
  return r;
}
var result = classify(0) + classify(1) + classify(2) + classify(3);`, 100+200+300+999)
	// Fallthrough semantics.
	runExpect(t, `
var hits = 0;
switch (2) {
case 1: hits += 1;
case 2: hits += 10;
case 3: hits += 100;
default: hits += 1000;
}
var result = hits;`, 1110)
	// Strict-equality dispatch: "1" does not match 1.
	runExpect(t, `
var r = 0;
switch ("1") {
case 1: r = 5; break;
default: r = 7;
}
var result = r;`, 7)
	// Default in the middle; matching case after it still reachable.
	runExpect(t, `
function f(x) {
  var r = 0;
  switch (x) {
  case 1: r += 1; break;
  default: r += 50;
  case 9: r += 9; break;
  }
  return r;
}
var result = f(1) * 10000 + f(9) * 100 + f(5);`, 1*10000+9*100+59)
	// break in switch inside a loop: continue still targets the loop.
	runExpect(t, `
var s = 0;
for (var i = 0; i < 6; i++) {
  switch (i % 3) {
  case 0: s += 1; break;
  case 1: continue;
  default: s += 100;
  }
  s += 1000;
}
var result = s;`, 2*1+2*100+4*1000)
}

func TestSwitchReachesFTLConsistently(t *testing.T) {
	src := `
function kind(x) {
  switch (x & 3) {
  case 0: return 11;
  case 1: return 22;
  case 2: return 33;
  }
  return 44;
}
function run(n) {
  var s = 0;
  for (var i = 0; i < n; i++) s += kind(i);
  return s;
}
var r = 0;
for (var k = 0; k < 800; k++) r = run(64);
var result = r;
`
	ref := run(t, src)
	vmFTL := New(DefaultConfig())
	got, err := vmFTL.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if got.ToStringValue() != ref.ToStringValue() {
		t.Errorf("FTL switch result %v, want %v", got, ref)
	}
}

func TestArrayHigherOrderMethods(t *testing.T) {
	runExpect(t, `
var doubled = [1, 2, 3].map(function(x) { return x * 2; });
var result = doubled[0] + doubled[1] + doubled[2];`, 12)
	runExpect(t, `
var evens = [1, 2, 3, 4, 5, 6].filter(function(x) { return x % 2 == 0; });
var result = evens.length * 100 + evens[0];`, 302)
	runExpect(t, `
var result = [1, 2, 3, 4].reduce(function(a, b) { return a + b; });`, 10)
	runExpect(t, `
var result = [1, 2, 3].reduce(function(a, b) { return a + b; }, 100);`, 106)
	runExpect(t, `
var s = 0;
[5, 6, 7].forEach(function(x, i) { s += x * (i + 1); });
var result = s;`, 5+12+21)
	runExpect(t, `
var result = ([2, 4, 6].every(function(x) { return x % 2 == 0; }) ? 1 : 0) +
             ([1, 2].some(function(x) { return x > 1; }) ? 10 : 0) +
             ([1, 3].every(function(x) { return x > 2; }) ? 100 : 0);`, 11)
	runExpect(t, `
var a = [0, 0, 0, 0];
a.fill(7, 1, 3);
var result = a[0] * 1000 + a[1] * 100 + a[2] * 10 + a[3];`, 770)
	runExpect(t, `var result = [3, 1, 3, 2].lastIndexOf(3);`, 2)
}

func TestArrayMethodErrors(t *testing.T) {
	for _, src := range []string{
		`[].reduce(function(a, b) { return a + b; });`,
		`[1].map(5);`,
	} {
		vm := New(DefaultConfig())
		if _, err := vm.Run(src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestMoreStringMethods(t *testing.T) {
	v := run(t, `var result = "  padded  ".trim();`)
	if v.ToStringValue() != "padded" {
		t.Errorf("trim = %q", v)
	}
	runExpect(t, `
var result = ("hello".startsWith("he") ? 1 : 0) +
             ("hello".endsWith("lo") ? 10 : 0) +
             ("hello".includes("ell") ? 100 : 0) +
             ("hello".startsWith("lo") ? 1000 : 0);`, 111)
	v = run(t, `var result = "ab".repeat(3);`)
	if v.ToStringValue() != "ababab" {
		t.Errorf("repeat = %q", v)
	}
	vm := New(DefaultConfig())
	if _, err := vm.Run(`"x".repeat(-1);`); err == nil {
		t.Error("negative repeat must error")
	}
}
