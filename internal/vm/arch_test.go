package vm

import "testing"

// The six configurations are the paper's Table II; their names, bar order,
// and predicate matrix are load-bearing for every figure reproduction, so
// they are pinned here exactly.

func TestArchNames(t *testing.T) {
	want := map[Arch]string{
		ArchBase:     "Base",
		ArchNoMapS:   "NoMap_S",
		ArchNoMapB:   "NoMap_B",
		ArchNoMap:    "NoMap",
		ArchNoMapBC:  "NoMap_BC",
		ArchNoMapRTM: "NoMap_RTM",
	}
	for a, name := range want {
		if a.String() != name {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), name)
		}
	}
	if got := Arch(99).String(); got != "Arch(?)" {
		t.Errorf("out-of-range arch renders %q", got)
	}
}

func TestAllArchsOrder(t *testing.T) {
	want := []Arch{ArchBase, ArchNoMapS, ArchNoMapB, ArchNoMap, ArchNoMapBC, ArchNoMapRTM}
	if len(AllArchs) != len(want) {
		t.Fatalf("AllArchs has %d entries, want %d", len(AllArchs), len(want))
	}
	for i, a := range want {
		if AllArchs[i] != a {
			t.Errorf("AllArchs[%d] = %v, want %v", i, AllArchs[i], a)
		}
	}
}

func TestArchPredicateMatrix(t *testing.T) {
	cases := []struct {
		arch                                   Arch
		tx, bounds, overflow, all, heavyweight bool
	}{
		{ArchBase, false, false, false, false, false},
		{ArchNoMapS, true, false, false, false, false},
		{ArchNoMapB, true, true, false, false, false},
		{ArchNoMap, true, true, true, false, false},
		{ArchNoMapBC, true, true, true, true, false},
		{ArchNoMapRTM, true, true, false, false, true},
	}
	for _, c := range cases {
		if got := c.arch.UsesTransactions(); got != c.tx {
			t.Errorf("%v.UsesTransactions() = %v, want %v", c.arch, got, c.tx)
		}
		if got := c.arch.CombinesBoundsChecks(); got != c.bounds {
			t.Errorf("%v.CombinesBoundsChecks() = %v, want %v", c.arch, got, c.bounds)
		}
		if got := c.arch.RemovesOverflowChecks(); got != c.overflow {
			t.Errorf("%v.RemovesOverflowChecks() = %v, want %v", c.arch, got, c.overflow)
		}
		if got := c.arch.RemovesAllChecks(); got != c.all {
			t.Errorf("%v.RemovesAllChecks() = %v, want %v", c.arch, got, c.all)
		}
		if got := c.arch.HeavyweightHTM(); got != c.heavyweight {
			t.Errorf("%v.HeavyweightHTM() = %v, want %v", c.arch, got, c.heavyweight)
		}
	}
}
