package vm

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"nomap/internal/stats"
	"nomap/internal/value"
)

// Builtins: the Math object, Array/Object/String constructors, print, and
// the per-class method tables dispatched by InvokeMethod. All of this
// executes as "C runtime code" — attributed to the NoFTL instruction class,
// like the paper's runtime calls.

func (vm *VM) installBuiltins() {
	g := vm.globals

	mathObj := value.NewObject(vm.shapes)
	mathObj.Class = "Math"
	m1 := func(name string, f func(float64) float64) {
		mathObj.Set(name, vm.native(name, func(this value.Value, args []value.Value) (value.Value, error) {
			return value.Number(f(arg(args, 0).ToNumber())), nil
		}))
	}
	m1("abs", math.Abs)
	m1("floor", math.Floor)
	m1("ceil", math.Ceil)
	m1("sqrt", math.Sqrt)
	m1("sin", math.Sin)
	m1("cos", math.Cos)
	m1("tan", math.Tan)
	m1("asin", math.Asin)
	m1("acos", math.Acos)
	m1("atan", math.Atan)
	m1("exp", math.Exp)
	m1("log", math.Log)
	m1("round", func(f float64) float64 { return math.Floor(f + 0.5) })
	mathObj.Set("pow", vm.native("pow", func(this value.Value, args []value.Value) (value.Value, error) {
		return value.Number(math.Pow(arg(args, 0).ToNumber(), arg(args, 1).ToNumber())), nil
	}))
	mathObj.Set("atan2", vm.native("atan2", func(this value.Value, args []value.Value) (value.Value, error) {
		return value.Number(math.Atan2(arg(args, 0).ToNumber(), arg(args, 1).ToNumber())), nil
	}))
	mathObj.Set("min", vm.native("min", func(this value.Value, args []value.Value) (value.Value, error) {
		r := math.Inf(1)
		for _, a := range args {
			r = math.Min(r, a.ToNumber())
		}
		return value.Number(r), nil
	}))
	mathObj.Set("max", vm.native("max", func(this value.Value, args []value.Value) (value.Value, error) {
		r := math.Inf(-1)
		for _, a := range args {
			r = math.Max(r, a.ToNumber())
		}
		return value.Number(r), nil
	}))
	mathObj.Set("random", vm.native("random", func(this value.Value, args []value.Value) (value.Value, error) {
		return value.Double(vm.nextRandom()), nil
	}))
	mathObj.Set("PI", value.Double(math.Pi))
	mathObj.Set("E", value.Double(math.E))
	g.Set("Math", value.Obj(mathObj))

	printFn := &value.Function{
		Name:        "print",
		Irrevocable: true, // I/O aborts transactions (paper §V-A)
		Native: func(this value.Value, args []value.Value) (value.Value, error) {
			parts := make([]string, len(args))
			for i, a := range args {
				parts[i] = a.ToStringValue()
			}
			vm.Output = append(vm.Output, strings.Join(parts, " "))
			return value.Undefined(), nil
		},
	}
	vm.registerNative(printFn)
	g.Set("print", value.Obj(value.NewFunctionObject(vm.shapes, printFn)))

	g.Set("Array", vm.native("Array", func(this value.Value, args []value.Value) (value.Value, error) {
		if len(args) == 1 && args[0].IsNumber() {
			return value.Obj(value.NewArray(vm.shapes, int(args[0].ToInt32()))), nil
		}
		a := value.NewArray(vm.shapes, 0)
		for _, v := range args {
			a.Push(v)
		}
		return value.Obj(a), nil
	}))
	g.Set("Object", vm.native("Object", func(this value.Value, args []value.Value) (value.Value, error) {
		return value.Obj(value.NewObject(vm.shapes)), nil
	}))

	stringObj := value.NewObject(vm.shapes)
	stringObj.Class = "String"
	stringObj.Set("fromCharCode", vm.native("fromCharCode", func(this value.Value, args []value.Value) (value.Value, error) {
		var b strings.Builder
		for _, a := range args {
			b.WriteRune(rune(a.ToInt32() & 0xFFFF))
		}
		return value.Str(b.String()), nil
	}))
	g.Set("String", value.Obj(stringObj))

	g.Set("isNaN", vm.native("isNaN", func(this value.Value, args []value.Value) (value.Value, error) {
		return value.Boolean(math.IsNaN(arg(args, 0).ToNumber())), nil
	}))
	g.Set("isFinite", vm.native("isFinite", func(this value.Value, args []value.Value) (value.Value, error) {
		f := arg(args, 0).ToNumber()
		return value.Boolean(!math.IsNaN(f) && !math.IsInf(f, 0)), nil
	}))
	g.Set("parseInt", vm.native("parseInt", func(this value.Value, args []value.Value) (value.Value, error) {
		s := strings.TrimSpace(arg(args, 0).ToStringValue())
		radix := 10
		if len(args) > 1 && !args[1].IsUndefined() {
			radix = int(args[1].ToInt32())
		}
		if radix == 16 && (strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X")) {
			s = s[2:]
		} else if radix == 10 && (strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X")) {
			s = s[2:]
			radix = 16
		}
		neg := false
		if strings.HasPrefix(s, "-") {
			neg = true
			s = s[1:]
		} else if strings.HasPrefix(s, "+") {
			s = s[1:]
		}
		end := 0
		for end < len(s) {
			if _, err := strconv.ParseInt(s[end:end+1], radix, 8); err != nil {
				break
			}
			end++
		}
		if end == 0 {
			return value.Double(math.NaN()), nil
		}
		n, err := strconv.ParseInt(s[:end], radix, 64)
		if err != nil {
			f, err2 := strconv.ParseFloat(s[:end], 64)
			if err2 != nil {
				return value.Double(math.NaN()), nil
			}
			n = int64(f)
		}
		if neg {
			n = -n
		}
		return value.Number(float64(n)), nil
	}))
	g.Set("parseFloat", vm.native("parseFloat", func(this value.Value, args []value.Value) (value.Value, error) {
		return value.Number(value.Str(arg(args, 0).ToStringValue()).ToNumber()), nil
	}))
	g.Set("Infinity", value.Double(math.Inf(1)))
	g.Set("NaN", value.Double(math.NaN()))
	g.Set("undefined", value.Undefined())
}

func (vm *VM) native(name string, f func(value.Value, []value.Value) (value.Value, error)) value.Value {
	fn := &value.Function{Name: name, Native: f}
	vm.registerNative(fn)
	return value.Obj(value.NewFunctionObject(vm.shapes, fn))
}

// registerNative assigns the builtin its creation-order identity (see
// NativeID). installBuiltins is deterministic, so identities line up across
// VMs — the property compiled-code relocation relies on.
func (vm *VM) registerNative(fn *value.Function) {
	vm.nativeIDs[fn] = len(vm.natives)
	vm.natives = append(vm.natives, fn)
}

func arg(args []value.Value, i int) value.Value {
	if i < len(args) {
		return args[i]
	}
	return value.Undefined()
}

// nextRandom is a deterministic xorshift64* generator in [0,1) so runs are
// reproducible (the paper's SunSpider/Kraken harnesses seed their PRNGs too).
func (vm *VM) nextRandom() float64 {
	x := vm.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	vm.rng = x
	return float64(x*0x2545F4914F6CDD1D>>11) / float64(1<<53)
}

// InvokeMethod performs recv.name(args): own callable properties first, then
// the builtin "prototype" methods per receiver class.
func (vm *VM) InvokeMethod(recv value.Value, name string, args []value.Value) (value.Value, error) {
	vm.counters.AddInstr(stats.NoFTL, 8)
	vm.counters.AddCycles(8, vm.InTransaction())
	switch recv.Kind() {
	case value.KindObject:
		o := recv.Object()
		if m := o.Get(name); m.IsCallable() {
			return vm.Call(m.Object().Fn, recv, args)
		}
		if o.IsArray {
			return vm.arrayMethod(o, name, args)
		}
		return value.Undefined(), fmt.Errorf("object has no method %q", name)
	case value.KindString:
		return vm.stringMethod(recv.StringVal(), name, args)
	case value.KindInt32, value.KindDouble:
		return vm.numberMethod(recv, name, args)
	default:
		return value.Undefined(), fmt.Errorf("cannot call method %q on %s", name, recv.TypeOf())
	}
}

func (vm *VM) arrayMethod(o *value.Object, name string, args []value.Value) (value.Value, error) {
	cost := int64(12 + 2*o.Length)
	vm.counters.AddInstr(stats.NoFTL, cost)
	vm.counters.AddCycles(cost, vm.InTransaction())
	switch name {
	case "push":
		n := 0
		for _, a := range args {
			n = o.Push(a)
		}
		if len(args) == 0 {
			n = o.Length
		}
		return value.Int(int32(n)), nil
	case "pop":
		return o.Pop(), nil
	case "shift":
		if o.Length == 0 {
			return value.Undefined(), nil
		}
		first := o.GetElement(0)
		for i := 1; i < o.Length; i++ {
			o.SetElement(i-1, o.ElementRaw(i))
		}
		o.SetLength(o.Length - 1)
		return first, nil
	case "join":
		sep := ","
		if len(args) > 0 && !args[0].IsUndefined() {
			sep = args[0].ToStringValue()
		}
		parts := make([]string, o.Length)
		for i := 0; i < o.Length; i++ {
			e := o.GetElement(i)
			if e.IsUndefined() || e.IsNull() {
				parts[i] = ""
			} else {
				parts[i] = e.ToStringValue()
			}
		}
		return value.Str(strings.Join(parts, sep)), nil
	case "slice":
		start, end := sliceBounds(args, o.Length)
		out := value.NewArray(vm.shapes, 0)
		for i := start; i < end; i++ {
			out.Push(o.GetElement(i))
		}
		return value.Obj(out), nil
	case "concat":
		out := value.NewArray(vm.shapes, 0)
		for i := 0; i < o.Length; i++ {
			out.Push(o.GetElement(i))
		}
		for _, a := range args {
			if ao := a.Object(); ao != nil && ao.IsArray {
				for i := 0; i < ao.Length; i++ {
					out.Push(ao.GetElement(i))
				}
			} else {
				out.Push(a)
			}
		}
		return value.Obj(out), nil
	case "reverse":
		for i, j := 0, o.Length-1; i < j; i, j = i+1, j-1 {
			a, b := o.ElementRaw(i), o.ElementRaw(j)
			o.SetElement(i, b)
			o.SetElement(j, a)
		}
		return value.Obj(o), nil
	case "indexOf":
		target := arg(args, 0)
		for i := 0; i < o.Length; i++ {
			if value.StrictEquals(o.GetElement(i), target) {
				return value.Int(int32(i)), nil
			}
		}
		return value.Int(-1), nil
	case "sort":
		return vm.arraySort(o, args)
	case "lastIndexOf":
		target := arg(args, 0)
		for i := o.Length - 1; i >= 0; i-- {
			if value.StrictEquals(o.GetElement(i), target) {
				return value.Int(int32(i)), nil
			}
		}
		return value.Int(-1), nil
	case "fill":
		v := arg(args, 0)
		start, end := 0, o.Length
		if len(args) > 1 {
			start, end = sliceBounds(args[1:], o.Length)
		}
		for i := start; i < end; i++ {
			o.SetElement(i, v)
		}
		return value.Obj(o), nil
	case "forEach", "map", "filter", "every", "some":
		return vm.arrayIterate(o, name, args)
	case "reduce":
		return vm.arrayReduce(o, args)
	default:
		return value.Undefined(), fmt.Errorf("array has no method %q", name)
	}
}

// arrayIterate implements the callback-driven iteration methods. The
// callbacks run through the normal tiered call path, so a hot map() lambda
// still climbs to Baseline (closures are pinned there).
func (vm *VM) arrayIterate(o *value.Object, name string, args []value.Value) (value.Value, error) {
	cb := arg(args, 0)
	if !cb.IsCallable() {
		return value.Undefined(), fmt.Errorf("%s requires a function", name)
	}
	fn := cb.Object().Fn
	var out *value.Object
	if name == "map" || name == "filter" {
		out = value.NewArray(vm.shapes, 0)
	}
	for i := 0; i < o.Length; i++ {
		elem := o.GetElement(i)
		r, err := vm.Call(fn, value.Undefined(), []value.Value{elem, value.Int(int32(i)), value.Obj(o)})
		if err != nil {
			return value.Undefined(), err
		}
		switch name {
		case "map":
			out.Push(r)
		case "filter":
			if r.ToBoolean() {
				out.Push(elem)
			}
		case "every":
			if !r.ToBoolean() {
				return value.Boolean(false), nil
			}
		case "some":
			if r.ToBoolean() {
				return value.Boolean(true), nil
			}
		}
	}
	switch name {
	case "map", "filter":
		return value.Obj(out), nil
	case "every":
		return value.Boolean(true), nil
	case "some":
		return value.Boolean(false), nil
	}
	return value.Undefined(), nil
}

func (vm *VM) arrayReduce(o *value.Object, args []value.Value) (value.Value, error) {
	cb := arg(args, 0)
	if !cb.IsCallable() {
		return value.Undefined(), fmt.Errorf("reduce requires a function")
	}
	fn := cb.Object().Fn
	i := 0
	var acc value.Value
	if len(args) > 1 {
		acc = args[1]
	} else {
		if o.Length == 0 {
			return value.Undefined(), fmt.Errorf("reduce of empty array with no initial value")
		}
		acc = o.GetElement(0)
		i = 1
	}
	for ; i < o.Length; i++ {
		r, err := vm.Call(fn, value.Undefined(), []value.Value{acc, o.GetElement(i), value.Int(int32(i)), value.Obj(o)})
		if err != nil {
			return value.Undefined(), err
		}
		acc = r
	}
	return acc, nil
}

func (vm *VM) arraySort(o *value.Object, args []value.Value) (value.Value, error) {
	elems := make([]value.Value, 0, o.Length)
	for i := 0; i < o.Length; i++ {
		e := o.ElementRaw(i)
		if !e.IsHole() {
			elems = append(elems, e)
		}
	}
	var sortErr error
	if len(args) > 0 && args[0].IsCallable() {
		cmp := args[0].Object().Fn
		sort.SliceStable(elems, func(i, j int) bool {
			if sortErr != nil {
				return false
			}
			r, err := vm.Call(cmp, value.Undefined(), []value.Value{elems[i], elems[j]})
			if err != nil {
				sortErr = err
				return false
			}
			return r.ToNumber() < 0
		})
	} else {
		sort.SliceStable(elems, func(i, j int) bool {
			return elems[i].ToStringValue() < elems[j].ToStringValue()
		})
	}
	if sortErr != nil {
		return value.Undefined(), sortErr
	}
	for i, e := range elems {
		o.SetElement(i, e)
	}
	return value.Obj(o), nil
}

func sliceBounds(args []value.Value, length int) (int, int) {
	start, end := 0, length
	if len(args) > 0 && !args[0].IsUndefined() {
		start = int(args[0].ToInt32())
		if start < 0 {
			start += length
		}
	}
	if len(args) > 1 && !args[1].IsUndefined() {
		end = int(args[1].ToInt32())
		if end < 0 {
			end += length
		}
	}
	start = clamp(start, 0, length)
	end = clamp(end, start, length)
	return start, end
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (vm *VM) stringMethod(s string, name string, args []value.Value) (value.Value, error) {
	cost := int64(10 + len(s)/8)
	vm.counters.AddInstr(stats.NoFTL, cost)
	vm.counters.AddCycles(cost, vm.InTransaction())
	switch name {
	case "charCodeAt":
		i := int(arg(args, 0).ToInt32())
		if i < 0 || i >= len(s) {
			return value.Double(math.NaN()), nil
		}
		return value.Int(int32(s[i])), nil
	case "charAt":
		i := int(arg(args, 0).ToInt32())
		if i < 0 || i >= len(s) {
			return value.Str(""), nil
		}
		return value.Str(s[i : i+1]), nil
	case "indexOf":
		from := 0
		if len(args) > 1 {
			from = clamp(int(args[1].ToInt32()), 0, len(s))
		}
		idx := strings.Index(s[from:], arg(args, 0).ToStringValue())
		if idx < 0 {
			return value.Int(-1), nil
		}
		return value.Int(int32(idx + from)), nil
	case "substring":
		a, b := sliceBounds(args, len(s))
		if len(args) > 1 {
			ai, bi := int(arg(args, 0).ToInt32()), int(arg(args, 1).ToInt32())
			if ai > bi {
				ai, bi = bi, ai
			}
			a, b = clamp(ai, 0, len(s)), clamp(bi, 0, len(s))
		}
		return value.Str(s[a:b]), nil
	case "substr":
		start := clamp(int(arg(args, 0).ToInt32()), 0, len(s))
		n := len(s) - start
		if len(args) > 1 && !args[1].IsUndefined() {
			n = clamp(int(args[1].ToInt32()), 0, len(s)-start)
		}
		return value.Str(s[start : start+n]), nil
	case "slice":
		a, b := sliceBounds(args, len(s))
		return value.Str(s[a:b]), nil
	case "toUpperCase":
		return value.Str(strings.ToUpper(s)), nil
	case "toLowerCase":
		return value.Str(strings.ToLower(s)), nil
	case "split":
		sep := arg(args, 0)
		out := value.NewArray(vm.shapes, 0)
		if sep.IsUndefined() {
			out.Push(value.Str(s))
			return value.Obj(out), nil
		}
		for _, part := range strings.Split(s, sep.ToStringValue()) {
			out.Push(value.Str(part))
		}
		return value.Obj(out), nil
	case "concat":
		for _, a := range args {
			s += a.ToStringValue()
		}
		return value.Str(s), nil
	case "replace":
		// Plain-string replacement of the first occurrence (no regexps).
		return value.Str(strings.Replace(s, arg(args, 0).ToStringValue(), arg(args, 1).ToStringValue(), 1)), nil
	case "trim":
		return value.Str(strings.TrimSpace(s)), nil
	case "startsWith":
		return value.Boolean(strings.HasPrefix(s, arg(args, 0).ToStringValue())), nil
	case "endsWith":
		return value.Boolean(strings.HasSuffix(s, arg(args, 0).ToStringValue())), nil
	case "includes":
		return value.Boolean(strings.Contains(s, arg(args, 0).ToStringValue())), nil
	case "repeat":
		n := int(arg(args, 0).ToInt32())
		if n < 0 {
			return value.Undefined(), fmt.Errorf("repeat count must be non-negative")
		}
		if n*len(s) > 1<<22 {
			return value.Undefined(), fmt.Errorf("repeat result too large")
		}
		return value.Str(strings.Repeat(s, n)), nil
	case "toString":
		return value.Str(s), nil
	default:
		return value.Undefined(), fmt.Errorf("string has no method %q", name)
	}
}

func (vm *VM) numberMethod(n value.Value, name string, args []value.Value) (value.Value, error) {
	vm.counters.AddInstr(stats.NoFTL, 12)
	vm.counters.AddCycles(12, vm.InTransaction())
	switch name {
	case "toString":
		radix := 10
		if len(args) > 0 && !args[0].IsUndefined() {
			radix = int(args[0].ToInt32())
		}
		if radix == 10 {
			return value.Str(n.ToStringValue()), nil
		}
		return value.Str(strconv.FormatInt(int64(n.ToNumber()), radix)), nil
	case "toFixed":
		d := int(arg(args, 0).ToInt32())
		return value.Str(strconv.FormatFloat(n.ToNumber(), 'f', d, 64)), nil
	default:
		return value.Undefined(), fmt.Errorf("number has no method %q", name)
	}
}
