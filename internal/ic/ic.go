// Package ic is the polymorphic-inline-cache subsystem: it turns the
// per-site receiver-shape histograms the Baseline tier records
// (profile.PropIC.Ways, profile.CallFeedback.Ways) into dispatch plans the
// speculative tiers materialize as shape-guarded dispatch trees.
//
// A plan lists the top-K receivers of a polymorphic site in hotness order.
// The compilers lower it to a chain of non-deopting shape predicates — one
// per way, each guarding that way's specialized body (slot load, slot store,
// speculated transition, or direct call) — terminated by a deopting tail
// guard, so an unexpected receiver exits to Baseline exactly like any other
// failed speculation. NoMap (§IV) then elides the whole chain's map checks
// transactionally: inside a transaction the tail guard's SMP is converted to
// an abort like every other check, and §V-C's footprint argument is why the
// chain is bounded (MaxDispatchWays) and why megamorphic sites demote to the
// generic runtime path instead of growing unbounded trees.
//
// The package deliberately knows nothing about IR: it consumes profile
// feedback and produces plain plans, so the builder (internal/ir) can attach
// a plan to a generic-call placeholder and the expansion pass can lower it
// without an import cycle.
package ic

import (
	"sort"

	"nomap/internal/profile"
	"nomap/internal/value"
)

// Kind classifies the site a plan dispatches.
type Kind uint8

const (
	// KindGet is a property load dispatched on receiver shape.
	KindGet Kind = iota
	// KindSet is a property store dispatched on receiver shape; ways may
	// speculate a shape transition (property add).
	KindSet
	// KindCall is a plain call dispatched on callee identity.
	KindCall
	// KindMethod is a method call dispatched on receiver shape: each way
	// loads the method slot under its shape and calls the cached target.
	KindMethod
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindGet:
		return "get"
	case KindSet:
		return "set"
	case KindCall:
		return "call"
	case KindMethod:
		return "method"
	}
	return "?"
}

// MaxDispatchWays bounds the guard chain a plan materializes (§V-C: the
// whole chain must stay footprint-cheap inside a transaction). It equals
// profile.MaxWays, so every recorded way of a non-megamorphic site fits.
const MaxDispatchWays = profile.MaxWays

// Way is one receiver of a dispatch plan.
type Way struct {
	// Shape is the receiver shape guarded (nil only for KindCall ways,
	// which dispatch on callee identity instead).
	Shape *value.Shape
	// Target is the callee (KindCall/KindMethod).
	Target *value.Function
	// Offset is the slot offset specialized under Shape: the property slot
	// for KindGet/KindSet (for transitioning stores, the destination slot
	// in the post-transition shape) and the method slot for KindMethod.
	Offset int
	// NewShape, when non-nil, speculates the shape transition of a
	// property-add store: the guarded body performs the add and the
	// receiver leaves the way with this shape.
	NewShape *value.Shape
	// Count is the way's observation count (hotness, for ordering).
	Count int64
}

// Plan is a polymorphic dispatch plan for one site: at least two ways in
// hotness order (observation count descending, first-seen order breaking
// ties, so plans are deterministic for equal counts).
type Plan struct {
	Kind Kind
	// Name is the property or method name (KindGet/KindSet/KindMethod).
	Name string
	Ways []Way
}

// orderWays sorts ways by descending count, keeping first-seen order for
// equal counts (the histogram is already in first-seen order).
func orderWays(ways []Way) {
	sort.SliceStable(ways, func(i, j int) bool { return ways[i].Count > ways[j].Count })
}

// PropPlan builds a dispatch plan for a polymorphic property site, or nil
// when the site does not qualify: megamorphic, fewer than two ways, mixed
// with non-object receivers or array-length reads, or (for loads) any way
// that speculates a transition. Monomorphic sites keep the original
// single-guard fast path and never get here.
func PropPlan(p *profile.PropIC, name string, store bool) *Plan {
	if p.Mega || p.SawNonObject || p.SawArrayLength || len(p.Ways) < 2 {
		return nil
	}
	kind := KindGet
	if store {
		kind = KindSet
	}
	pl := &Plan{Kind: kind, Name: name}
	for _, w := range p.Ways {
		if w.Shape == nil {
			return nil
		}
		if w.NewShape != nil && !store {
			return nil
		}
		pl.Ways = append(pl.Ways, Way{Shape: w.Shape, Offset: w.Offset, NewShape: w.NewShape, Count: w.Count})
	}
	orderWays(pl.Ways)
	if len(pl.Ways) > MaxDispatchWays {
		pl.Ways = pl.Ways[:MaxDispatchWays]
	}
	return pl
}

// CallPlan builds a dispatch plan for a polymorphic plain-call site, or nil
// when it does not qualify. Ways guard on callee identity; a way recorded
// with a receiver shape means the histogram mixes call forms and the site
// declines.
func CallPlan(f *profile.CallFeedback) *Plan {
	if f.Mega || len(f.Ways) < 2 {
		return nil
	}
	pl := &Plan{Kind: KindCall}
	for _, w := range f.Ways {
		if w.Target == nil || w.Recv != nil {
			return nil
		}
		pl.Ways = append(pl.Ways, Way{Target: w.Target, Count: w.Count})
	}
	orderWays(pl.Ways)
	if len(pl.Ways) > MaxDispatchWays {
		pl.Ways = pl.Ways[:MaxDispatchWays]
	}
	return pl
}

// MethodPlan builds a dispatch plan for a polymorphic method-call site, or
// nil when it does not qualify. Every way must carry a receiver shape under
// which the method name resolves to a slot (so the guarded body is a slot
// load plus a callee check plus a direct call).
func MethodPlan(f *profile.CallFeedback, name string) *Plan {
	if f.Mega || len(f.Ways) < 2 {
		return nil
	}
	pl := &Plan{Kind: KindMethod, Name: name}
	for _, w := range f.Ways {
		if w.Target == nil || w.Recv == nil {
			return nil
		}
		off := w.Recv.Lookup(name)
		if off < 0 {
			return nil
		}
		pl.Ways = append(pl.Ways, Way{Shape: w.Recv, Target: w.Target, Offset: off, Count: w.Count})
	}
	orderWays(pl.Ways)
	if len(pl.Ways) > MaxDispatchWays {
		pl.Ways = pl.Ways[:MaxDispatchWays]
	}
	return pl
}
