package ic

import (
	"testing"

	"nomap/internal/profile"
	"nomap/internal/value"
)

// shapes builds a transition chain root → +k0 → +k0+k1 → ... and returns the
// per-step shapes (index i has keys k0..ki).
func shapes(t *testing.T, keys ...string) []*value.Shape {
	t.Helper()
	tbl := value.NewShapeTable()
	s := tbl.Root
	out := make([]*value.Shape, 0, len(keys))
	for _, k := range keys {
		s = tbl.Transition(s, k)
		out = append(out, s)
	}
	return out
}

func fn(name string) *value.Function { return &value.Function{Name: name} }

func TestPropPlanOrdersByHotness(t *testing.T) {
	ss := shapes(t, "a", "b", "c")
	ic := &profile.PropIC{Ways: []profile.PropWay{
		{Shape: ss[0], Offset: 0, Count: 3},
		{Shape: ss[1], Offset: 1, Count: 9},
		{Shape: ss[2], Offset: 2, Count: 3},
	}}
	pl := PropPlan(ic, "a", false)
	if pl == nil {
		t.Fatal("qualifying 3-way site produced no plan")
	}
	if pl.Kind != KindGet || pl.Name != "a" {
		t.Fatalf("plan = kind %v name %q, want get a", pl.Kind, pl.Name)
	}
	// Hottest first; equal counts keep first-seen order (deterministic
	// plans mean deterministic codegen and stable cache fingerprints).
	if pl.Ways[0].Shape != ss[1] || pl.Ways[1].Shape != ss[0] || pl.Ways[2].Shape != ss[2] {
		t.Errorf("ways not in hotness/first-seen order: %+v", pl.Ways)
	}
}

func TestPropPlanDeclines(t *testing.T) {
	ss := shapes(t, "a", "b")
	two := []profile.PropWay{
		{Shape: ss[0], Offset: 0, Count: 1},
		{Shape: ss[1], Offset: 1, Count: 1},
	}
	cases := []struct {
		name  string
		ic    *profile.PropIC
		store bool
	}{
		{"megamorphic", &profile.PropIC{Mega: true, Ways: two}, false},
		{"non-object receivers", &profile.PropIC{SawNonObject: true, Ways: two}, false},
		{"array length", &profile.PropIC{SawArrayLength: true, Ways: two}, false},
		{"monomorphic", &profile.PropIC{Ways: two[:1]}, false},
		{"transition on a load", &profile.PropIC{Ways: []profile.PropWay{
			{Shape: ss[0], Offset: 0, Count: 1},
			{Shape: ss[0], Offset: 1, NewShape: ss[1], Count: 1},
		}}, false},
	}
	for _, c := range cases {
		if pl := PropPlan(c.ic, "x", c.store); pl != nil {
			t.Errorf("%s: got a plan (%d ways), want decline", c.name, len(pl.Ways))
		}
	}
	// The same transitioning histogram qualifies as a store plan.
	st := &profile.PropIC{Ways: []profile.PropWay{
		{Shape: ss[0], Offset: 0, Count: 1},
		{Shape: ss[0], Offset: 1, NewShape: ss[1], Count: 1},
	}}
	pl := PropPlan(st, "x", true)
	if pl == nil || pl.Kind != KindSet {
		t.Fatalf("transitioning store plan = %+v, want KindSet", pl)
	}
	if pl.Ways[1].NewShape == nil && pl.Ways[0].NewShape == nil {
		t.Error("store plan lost its transition speculation")
	}
}

func TestPropPlanCapsAtMaxWays(t *testing.T) {
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	ss := shapes(t, keys...)
	ic := &profile.PropIC{}
	for i, s := range ss {
		ic.Ways = append(ic.Ways, profile.PropWay{Shape: s, Offset: i, Count: int64(i + 1)})
	}
	pl := PropPlan(ic, "x", false)
	if pl == nil {
		t.Fatal("10-way histogram produced no plan")
	}
	if len(pl.Ways) != MaxDispatchWays {
		t.Fatalf("plan has %d ways, want cap %d", len(pl.Ways), MaxDispatchWays)
	}
	// The cap keeps the hottest ways: counts 10..3 survive, 2 and 1 drop.
	if pl.Ways[0].Count != 10 || pl.Ways[MaxDispatchWays-1].Count != 3 {
		t.Errorf("cap did not keep the hottest ways: first=%d last=%d",
			pl.Ways[0].Count, pl.Ways[MaxDispatchWays-1].Count)
	}
}

func TestCallPlan(t *testing.T) {
	fa, fb := fn("fa"), fn("fb")
	f := &profile.CallFeedback{Ways: []profile.CallWay{
		{Target: fa, Count: 2},
		{Target: fb, Count: 5},
	}}
	pl := CallPlan(f)
	if pl == nil || pl.Kind != KindCall {
		t.Fatalf("plan = %+v, want KindCall", pl)
	}
	if pl.Ways[0].Target != fb || pl.Ways[1].Target != fa {
		t.Errorf("ways not in hotness order: %+v", pl.Ways)
	}
	// A histogram mixing call forms (a way with a receiver shape) declines.
	ss := shapes(t, "m")
	mixed := &profile.CallFeedback{Ways: []profile.CallWay{
		{Target: fa, Count: 1},
		{Target: fb, Recv: ss[0], Count: 1},
	}}
	if CallPlan(mixed) != nil {
		t.Error("mixed plain/method histogram produced a plan")
	}
	if CallPlan(&profile.CallFeedback{Mega: true, Ways: f.Ways}) != nil {
		t.Error("megamorphic call site produced a plan")
	}
}

func TestMethodPlanResolvesSlots(t *testing.T) {
	fa, fb := fn("fa"), fn("fb")
	tbl := value.NewShapeTable()
	sa := tbl.Transition(tbl.Transition(tbl.Root, "k"), "m") // {k, m}: m at slot 1
	sb := tbl.Transition(tbl.Transition(tbl.Root, "m"), "k") // {m, k}: m at slot 0
	f := &profile.CallFeedback{Ways: []profile.CallWay{
		{Target: fa, Recv: sa, Count: 1},
		{Target: fb, Recv: sb, Count: 4},
	}}
	pl := MethodPlan(f, "m")
	if pl == nil || pl.Kind != KindMethod || pl.Name != "m" {
		t.Fatalf("plan = %+v, want method m", pl)
	}
	if pl.Ways[0].Offset != 0 || pl.Ways[1].Offset != 1 {
		t.Errorf("method slots not resolved per shape: %+v", pl.Ways)
	}
	// A receiver shape where the method name does not resolve declines the
	// whole site (the guarded body would load a garbage slot).
	bad := &profile.CallFeedback{Ways: []profile.CallWay{
		{Target: fa, Recv: sa, Count: 1},
		{Target: fb, Recv: tbl.Transition(tbl.Root, "q"), Count: 1},
	}}
	if MethodPlan(bad, "m") != nil {
		t.Error("unresolvable method slot produced a plan")
	}
}
