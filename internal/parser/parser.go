// Package parser builds ASTs for the JavaScript subset with a
// recursive-descent / precedence-climbing parser.
package parser

import (
	"fmt"

	"nomap/internal/ast"
	"nomap/internal/lexer"
)

// Error is a syntax error with position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Parse parses a complete program.
func Parse(src string) (*ast.Program, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &ast.Program{}
	for !p.atEOF() {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		prog.Body = append(prog.Body, s)
	}
	return prog, nil
}

// ParseExpr parses a single expression (used by tests and the REPL-style
// quickstart example).
func ParseExpr(src string) (ast.Expr, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.assignExpr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("trailing input after expression")
	}
	return e, nil
}

type parser struct {
	toks []lexer.Token
	pos  int
}

func (p *parser) cur() lexer.Token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool       { return p.cur().Kind == lexer.EOF }
func (p *parser) next() lexer.Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) here() ast.Position {
	t := p.cur()
	return ast.Position{Line: t.Line, Col: t.Col}
}

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return &Error{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) isPunct(text string) bool {
	t := p.cur()
	return t.Kind == lexer.Punct && t.Text == text
}

func (p *parser) isKeyword(text string) bool {
	t := p.cur()
	return t.Kind == lexer.Keyword && t.Text == text
}

func (p *parser) acceptPunct(text string) bool {
	if p.isPunct(text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectPunct(text string) error {
	if !p.acceptPunct(text) {
		return p.errf("expected %q, found %s", text, p.cur())
	}
	return nil
}

func (p *parser) acceptKeyword(text string) bool {
	if p.isKeyword(text) {
		p.next()
		return true
	}
	return false
}

// statement parses one statement.
func (p *parser) statement() (ast.Stmt, error) {
	pos := p.here()
	switch {
	case p.isKeyword("var"):
		s, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		p.acceptPunct(";")
		return s, nil
	case p.isKeyword("function"):
		p.next()
		fn, err := p.functionLiteral(true)
		if err != nil {
			return nil, err
		}
		return &ast.FunctionDecl{P: pos, Fn: fn}, nil
	case p.isPunct("{"):
		return p.block()
	case p.isKeyword("if"):
		return p.ifStmt()
	case p.isKeyword("while"):
		return p.whileStmt()
	case p.isKeyword("do"):
		return p.doWhileStmt()
	case p.isKeyword("for"):
		return p.forStmt()
	case p.isKeyword("switch"):
		return p.switchStmt()
	case p.isKeyword("return"):
		p.next()
		r := &ast.ReturnStmt{P: pos}
		if !p.isPunct(";") && !p.isPunct("}") && !p.atEOF() {
			x, err := p.expression()
			if err != nil {
				return nil, err
			}
			r.X = x
		}
		p.acceptPunct(";")
		return r, nil
	case p.isKeyword("break"):
		p.next()
		p.acceptPunct(";")
		return &ast.BreakStmt{P: pos}, nil
	case p.isKeyword("continue"):
		p.next()
		p.acceptPunct(";")
		return &ast.ContinueStmt{P: pos}, nil
	case p.isPunct(";"):
		p.next()
		return &ast.BlockStmt{P: pos}, nil
	default:
		x, err := p.expression()
		if err != nil {
			return nil, err
		}
		p.acceptPunct(";")
		return &ast.ExprStmt{P: pos, X: x}, nil
	}
}

func (p *parser) varDecl() (*ast.VarDecl, error) {
	pos := p.here()
	p.next() // var
	d := &ast.VarDecl{P: pos}
	for {
		if p.cur().Kind != lexer.Ident {
			return nil, p.errf("expected identifier in var declaration, found %s", p.cur())
		}
		d.Names = append(d.Names, p.next().Text)
		if p.acceptPunct("=") {
			init, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			d.Inits = append(d.Inits, init)
		} else {
			d.Inits = append(d.Inits, nil)
		}
		if !p.acceptPunct(",") {
			return d, nil
		}
	}
}

func (p *parser) block() (*ast.BlockStmt, error) {
	pos := p.here()
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	b := &ast.BlockStmt{P: pos}
	for !p.isPunct("}") {
		if p.atEOF() {
			return nil, p.errf("unterminated block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		b.Body = append(b.Body, s)
	}
	p.next()
	return b, nil
}

func (p *parser) ifStmt() (ast.Stmt, error) {
	pos := p.here()
	p.next() // if
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	then, err := p.statement()
	if err != nil {
		return nil, err
	}
	s := &ast.IfStmt{P: pos, Cond: cond, Then: then}
	if p.acceptKeyword("else") {
		els, err := p.statement()
		if err != nil {
			return nil, err
		}
		s.Else = els
	}
	return s, nil
}

func (p *parser) whileStmt() (ast.Stmt, error) {
	pos := p.here()
	p.next() // while
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &ast.WhileStmt{P: pos, Cond: cond, Body: body}, nil
}

func (p *parser) doWhileStmt() (ast.Stmt, error) {
	pos := p.here()
	p.next() // do
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	if !p.acceptKeyword("while") {
		return nil, p.errf("expected 'while' after do body")
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	p.acceptPunct(";")
	return &ast.DoWhileStmt{P: pos, Body: body, Cond: cond}, nil
}

func (p *parser) forStmt() (ast.Stmt, error) {
	pos := p.here()
	p.next() // for
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	s := &ast.ForStmt{P: pos}
	if !p.isPunct(";") {
		if p.isKeyword("var") {
			d, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			s.Init = d
		} else {
			x, err := p.expression()
			if err != nil {
				return nil, err
			}
			s.Init = &ast.ExprStmt{P: x.Pos(), X: x}
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.isPunct(";") {
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.isPunct(")") {
		post, err := p.expression()
		if err != nil {
			return nil, err
		}
		s.Post = post
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

func (p *parser) switchStmt() (ast.Stmt, error) {
	pos := p.here()
	p.next() // switch
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	disc, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	s := &ast.SwitchStmt{P: pos, Disc: disc}
	sawDefault := false
	for !p.isPunct("}") {
		var c ast.SwitchCase
		switch {
		case p.acceptKeyword("case"):
			test, err := p.expression()
			if err != nil {
				return nil, err
			}
			c.Test = test
		case p.acceptKeyword("default"):
			if sawDefault {
				return nil, p.errf("duplicate default clause")
			}
			sawDefault = true
		default:
			return nil, p.errf("expected 'case' or 'default', found %s", p.cur())
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		for !p.isPunct("}") && !p.isKeyword("case") && !p.isKeyword("default") {
			if p.atEOF() {
				return nil, p.errf("unterminated switch")
			}
			st, err := p.statement()
			if err != nil {
				return nil, err
			}
			c.Body = append(c.Body, st)
		}
		s.Cases = append(s.Cases, c)
	}
	p.next() // }
	return s, nil
}

func (p *parser) functionLiteral(requireName bool) (*ast.FunctionLiteral, error) {
	pos := p.here()
	fn := &ast.FunctionLiteral{P: pos}
	if p.cur().Kind == lexer.Ident {
		fn.Name = p.next().Text
	} else if requireName {
		return nil, p.errf("expected function name")
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for !p.isPunct(")") {
		if p.cur().Kind != lexer.Ident {
			return nil, p.errf("expected parameter name, found %s", p.cur())
		}
		fn.Params = append(fn.Params, p.next().Text)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

// expression parses a full expression (assignment level; no comma operator).
func (p *parser) expression() (ast.Expr, error) { return p.assignExpr() }

var compoundOps = map[string]string{
	"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
	"&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>", ">>>=": ">>>",
}

func (p *parser) assignExpr() (ast.Expr, error) {
	pos := p.here()
	left, err := p.conditional()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == lexer.Punct {
		if t.Text == "=" {
			p.next()
			if !isAssignTarget(left) {
				return nil, p.errf("invalid assignment target")
			}
			v, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			return &ast.Assign{P: pos, Target: left, Value: v}, nil
		}
		if op, ok := compoundOps[t.Text]; ok {
			p.next()
			if !isAssignTarget(left) {
				return nil, p.errf("invalid assignment target")
			}
			v, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			return &ast.Assign{P: pos, Op: op, Target: left, Value: v}, nil
		}
	}
	return left, nil
}

func isAssignTarget(e ast.Expr) bool {
	switch e.(type) {
	case *ast.Ident, *ast.Member, *ast.Index:
		return true
	}
	return false
}

func (p *parser) conditional() (ast.Expr, error) {
	pos := p.here()
	cond, err := p.binaryExpr(0)
	if err != nil {
		return nil, err
	}
	if !p.acceptPunct("?") {
		return cond, nil
	}
	a, err := p.assignExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	b, err := p.assignExpr()
	if err != nil {
		return nil, err
	}
	return &ast.Conditional{P: pos, Cond: cond, A: a, B: b}, nil
}

// Binary operator precedence (JavaScript levels; higher binds tighter).
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6, "===": 6, "!==": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8, ">>>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) binaryExpr(minPrec int) (ast.Expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != lexer.Punct {
			return left, nil
		}
		prec, ok := binPrec[t.Text]
		if !ok || prec < minPrec {
			return left, nil
		}
		op := p.next().Text
		right, err := p.binaryExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		pos := ast.Position{Line: t.Line, Col: t.Col}
		if op == "&&" || op == "||" {
			left = &ast.Logical{P: pos, Op: op, L: left, R: right}
		} else {
			left = &ast.Binary{P: pos, Op: op, L: left, R: right}
		}
	}
}

func (p *parser) unary() (ast.Expr, error) {
	pos := p.here()
	t := p.cur()
	if t.Kind == lexer.Punct {
		switch t.Text {
		case "-", "+", "!", "~":
			p.next()
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &ast.Unary{P: pos, Op: t.Text, X: x}, nil
		case "++", "--":
			p.next()
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			if !isAssignTarget(x) {
				return nil, p.errf("invalid %s target", t.Text)
			}
			return &ast.Update{P: pos, Op: t.Text, Prefix: true, X: x}, nil
		}
	}
	if p.isKeyword("typeof") {
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{P: pos, Op: "typeof", X: x}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (ast.Expr, error) {
	x, err := p.callOrMember()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == lexer.Punct && (t.Text == "++" || t.Text == "--") {
		if !isAssignTarget(x) {
			return nil, p.errf("invalid %s target", t.Text)
		}
		p.next()
		return &ast.Update{P: x.Pos(), Op: t.Text, Prefix: false, X: x}, nil
	}
	return x, nil
}

func (p *parser) callOrMember() (ast.Expr, error) {
	var x ast.Expr
	var err error
	if p.isKeyword("new") {
		pos := p.here()
		p.next()
		callee, err := p.callOrMemberNoCall()
		if err != nil {
			return nil, err
		}
		call := &ast.Call{P: pos, Callee: callee, IsNew: true}
		if p.isPunct("(") {
			if call.Args, err = p.arguments(); err != nil {
				return nil, err
			}
		}
		x = call
	} else {
		x, err = p.primary()
		if err != nil {
			return nil, err
		}
	}
	return p.memberSuffixes(x, true)
}

// callOrMemberNoCall parses the callee of `new` — member accesses bind
// tighter than the new-call arguments.
func (p *parser) callOrMemberNoCall() (ast.Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	return p.memberSuffixes(x, false)
}

func (p *parser) memberSuffixes(x ast.Expr, allowCall bool) (ast.Expr, error) {
	for {
		pos := p.here()
		switch {
		case p.acceptPunct("."):
			if p.cur().Kind != lexer.Ident && p.cur().Kind != lexer.Keyword {
				return nil, p.errf("expected property name after '.'")
			}
			x = &ast.Member{P: pos, X: x, Name: p.next().Text}
		case p.acceptPunct("["):
			i, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			x = &ast.Index{P: pos, X: x, I: i}
		case allowCall && p.isPunct("("):
			args, err := p.arguments()
			if err != nil {
				return nil, err
			}
			x = &ast.Call{P: pos, Callee: x, Args: args}
		default:
			return x, nil
		}
	}
}

func (p *parser) arguments() ([]ast.Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []ast.Expr
	for !p.isPunct(")") {
		a, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return args, nil
}

func (p *parser) primary() (ast.Expr, error) {
	pos := p.here()
	t := p.cur()
	switch t.Kind {
	case lexer.Number:
		p.next()
		return &ast.NumberLit{P: pos, Value: t.Num}, nil
	case lexer.String:
		p.next()
		return &ast.StringLit{P: pos, Value: t.Str}, nil
	case lexer.Ident:
		p.next()
		return &ast.Ident{P: pos, Name: t.Text}, nil
	case lexer.Keyword:
		switch t.Text {
		case "true", "false":
			p.next()
			return &ast.BoolLit{P: pos, Value: t.Text == "true"}, nil
		case "null":
			p.next()
			return &ast.NullLit{P: pos}, nil
		case "undefined":
			p.next()
			return &ast.UndefinedLit{P: pos}, nil
		case "function":
			p.next()
			return p.functionLiteral(false)
		}
		return nil, p.errf("unexpected keyword %q", t.Text)
	case lexer.Punct:
		switch t.Text {
		case "(":
			p.next()
			x, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return x, nil
		case "[":
			p.next()
			a := &ast.ArrayLit{P: pos}
			for !p.isPunct("]") {
				e, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				a.Elems = append(a.Elems, e)
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			return a, nil
		case "{":
			p.next()
			o := &ast.ObjectLit{P: pos}
			for !p.isPunct("}") {
				kt := p.cur()
				var key string
				switch kt.Kind {
				case lexer.Ident, lexer.Keyword:
					key = kt.Text
				case lexer.String:
					key = kt.Str
				case lexer.Number:
					key = kt.Text
				default:
					return nil, p.errf("expected property key, found %s", kt)
				}
				p.next()
				if err := p.expectPunct(":"); err != nil {
					return nil, err
				}
				v, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				o.Keys = append(o.Keys, key)
				o.Values = append(o.Values, v)
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct("}"); err != nil {
				return nil, err
			}
			return o, nil
		}
	}
	return nil, p.errf("unexpected token %s", t)
}
