package parser

import (
	"testing"

	"nomap/internal/ast"
)

func parseOK(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return prog
}

func TestVarDecl(t *testing.T) {
	prog := parseOK(t, "var a = 1, b, c = a + 2;")
	d, ok := prog.Body[0].(*ast.VarDecl)
	if !ok {
		t.Fatalf("got %T", prog.Body[0])
	}
	if len(d.Names) != 3 || d.Names[0] != "a" || d.Names[1] != "b" || d.Names[2] != "c" {
		t.Fatalf("names = %v", d.Names)
	}
	if d.Inits[1] != nil {
		t.Fatal("b should have no initializer")
	}
	if _, ok := d.Inits[2].(*ast.Binary); !ok {
		t.Fatalf("c init = %T", d.Inits[2])
	}
}

func TestPrecedence(t *testing.T) {
	prog := parseOK(t, "x = 1 + 2 * 3;")
	as := prog.Body[0].(*ast.ExprStmt).X.(*ast.Assign)
	add := as.Value.(*ast.Binary)
	if add.Op != "+" {
		t.Fatalf("top op = %q", add.Op)
	}
	mul := add.R.(*ast.Binary)
	if mul.Op != "*" {
		t.Fatalf("right op = %q", mul.Op)
	}
}

func TestLogicalVsBitwise(t *testing.T) {
	prog := parseOK(t, "x = a || b && c | d;")
	or := prog.Body[0].(*ast.ExprStmt).X.(*ast.Assign).Value.(*ast.Logical)
	if or.Op != "||" {
		t.Fatalf("top = %q", or.Op)
	}
	and := or.R.(*ast.Logical)
	if and.Op != "&&" {
		t.Fatalf("and = %q", and.Op)
	}
	bor := and.R.(*ast.Binary)
	if bor.Op != "|" {
		t.Fatalf("bitor = %q", bor.Op)
	}
}

func TestCompoundAssign(t *testing.T) {
	prog := parseOK(t, "a += 1; a <<= 2; a >>>= 3;")
	ops := []string{"+", "<<", ">>>"}
	for i, want := range ops {
		as := prog.Body[i].(*ast.ExprStmt).X.(*ast.Assign)
		if as.Op != want {
			t.Errorf("stmt %d op = %q, want %q", i, as.Op, want)
		}
	}
}

func TestMemberIndexCallChain(t *testing.T) {
	prog := parseOK(t, "obj.a[i].f(1, 2);")
	call := prog.Body[0].(*ast.ExprStmt).X.(*ast.Call)
	if len(call.Args) != 2 {
		t.Fatalf("args = %d", len(call.Args))
	}
	m := call.Callee.(*ast.Member)
	if m.Name != "f" {
		t.Fatalf("method = %q", m.Name)
	}
	idx := m.X.(*ast.Index)
	inner := idx.X.(*ast.Member)
	if inner.Name != "a" {
		t.Fatalf("inner member = %q", inner.Name)
	}
}

func TestNewExpression(t *testing.T) {
	prog := parseOK(t, "var a = new Array(10);")
	call := prog.Body[0].(*ast.VarDecl).Inits[0].(*ast.Call)
	if !call.IsNew || len(call.Args) != 1 {
		t.Fatalf("new parse wrong: %+v", call)
	}
}

func TestForLoop(t *testing.T) {
	prog := parseOK(t, "for (var i = 0; i < n; i++) { s += i; }")
	f := prog.Body[0].(*ast.ForStmt)
	if _, ok := f.Init.(*ast.VarDecl); !ok {
		t.Fatalf("init = %T", f.Init)
	}
	if _, ok := f.Cond.(*ast.Binary); !ok {
		t.Fatalf("cond = %T", f.Cond)
	}
	u, ok := f.Post.(*ast.Update)
	if !ok || u.Prefix || u.Op != "++" {
		t.Fatalf("post = %#v", f.Post)
	}
}

func TestForWithEmptyClauses(t *testing.T) {
	prog := parseOK(t, "for (;;) { break; }")
	f := prog.Body[0].(*ast.ForStmt)
	if f.Init != nil || f.Cond != nil || f.Post != nil {
		t.Fatal("clauses should be nil")
	}
}

func TestFunctionDeclAndExpr(t *testing.T) {
	prog := parseOK(t, `
function add(a, b) { return a + b; }
var f = function(x) { return x; };
var g = function named() { return 0; };
`)
	d := prog.Body[0].(*ast.FunctionDecl)
	if d.Fn.Name != "add" || len(d.Fn.Params) != 2 {
		t.Fatalf("decl = %+v", d.Fn)
	}
	anon := prog.Body[1].(*ast.VarDecl).Inits[0].(*ast.FunctionLiteral)
	if anon.Name != "" {
		t.Fatalf("anon name = %q", anon.Name)
	}
	named := prog.Body[2].(*ast.VarDecl).Inits[0].(*ast.FunctionLiteral)
	if named.Name != "named" {
		t.Fatalf("named = %q", named.Name)
	}
}

func TestConditionalExpr(t *testing.T) {
	prog := parseOK(t, "x = a < b ? a : b;")
	c := prog.Body[0].(*ast.ExprStmt).X.(*ast.Assign).Value.(*ast.Conditional)
	if _, ok := c.Cond.(*ast.Binary); !ok {
		t.Fatalf("cond = %T", c.Cond)
	}
}

func TestObjectAndArrayLiterals(t *testing.T) {
	prog := parseOK(t, `var o = {a: 1, "b": 2, 3: 4}; var arr = [1, 2, 3];`)
	o := prog.Body[0].(*ast.VarDecl).Inits[0].(*ast.ObjectLit)
	if len(o.Keys) != 3 || o.Keys[0] != "a" || o.Keys[1] != "b" || o.Keys[2] != "3" {
		t.Fatalf("keys = %v", o.Keys)
	}
	a := prog.Body[1].(*ast.VarDecl).Inits[0].(*ast.ArrayLit)
	if len(a.Elems) != 3 {
		t.Fatalf("elems = %d", len(a.Elems))
	}
}

func TestTypeofAndUnary(t *testing.T) {
	prog := parseOK(t, "x = typeof -y;")
	u := prog.Body[0].(*ast.ExprStmt).X.(*ast.Assign).Value.(*ast.Unary)
	if u.Op != "typeof" {
		t.Fatalf("op = %q", u.Op)
	}
	if inner := u.X.(*ast.Unary); inner.Op != "-" {
		t.Fatalf("inner = %q", inner.Op)
	}
}

func TestUpdatePrefixPostfix(t *testing.T) {
	prog := parseOK(t, "++a; a--;")
	pre := prog.Body[0].(*ast.ExprStmt).X.(*ast.Update)
	if !pre.Prefix || pre.Op != "++" {
		t.Fatalf("pre = %+v", pre)
	}
	post := prog.Body[1].(*ast.ExprStmt).X.(*ast.Update)
	if post.Prefix || post.Op != "--" {
		t.Fatalf("post = %+v", post)
	}
}

func TestDoWhile(t *testing.T) {
	prog := parseOK(t, "do { x++; } while (x < 10);")
	if _, ok := prog.Body[0].(*ast.DoWhileStmt); !ok {
		t.Fatalf("got %T", prog.Body[0])
	}
}

func TestKeywordPropertyNames(t *testing.T) {
	prog := parseOK(t, "x = a.in; y = b.new;")
	m := prog.Body[0].(*ast.ExprStmt).X.(*ast.Assign).Value.(*ast.Member)
	if m.Name != "in" {
		t.Fatalf("name = %q", m.Name)
	}
}

func TestSwitchStatement(t *testing.T) {
	prog := parseOK(t, `
switch (x + 1) {
case 1:
case 2: y = 2; break;
default: y = 0;
case "s": y = 9;
}`)
	s := prog.Body[0].(*ast.SwitchStmt)
	if len(s.Cases) != 4 {
		t.Fatalf("cases = %d", len(s.Cases))
	}
	if s.Cases[0].Test == nil || len(s.Cases[0].Body) != 0 {
		t.Error("empty fallthrough case parsed wrong")
	}
	if len(s.Cases[1].Body) != 2 {
		t.Errorf("case 2 body = %d stmts", len(s.Cases[1].Body))
	}
	if s.Cases[2].Test != nil {
		t.Error("default must have nil test")
	}
	if _, ok := s.Cases[3].Test.(*ast.StringLit); !ok {
		t.Error("string case test lost")
	}
	for _, bad := range []string{
		"switch (x) { case 1 }",            // missing colon
		"switch (x) { default: default: }", // duplicate default
		"switch x { }",                     // missing parens
		"switch (x) { y = 2; }",            // statement outside a clause
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("%q: expected parse error", bad)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"var 1 = 2;",
		"if (x {",
		"for (;;",
		"function () {}", // declarations need names
		"a + ;",
		"1 = 2;",
		"++1;",
		"do { } until (x);",
		"{ unterminated",
		"x = (1 + 2;",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: expected parse error", src)
		}
	}
}

func TestParseExprHelper(t *testing.T) {
	e, err := ParseExpr("1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*ast.Binary); !ok {
		t.Fatalf("got %T", e)
	}
	if _, err := ParseExpr("1 + "); err == nil {
		t.Error("expected error for truncated expression")
	}
	if _, err := ParseExpr("1 2"); err == nil {
		t.Error("expected error for trailing input")
	}
}
