package lexer

import "testing"

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestNumbers(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"0", 0},
		{"42", 42},
		{"3.5", 3.5},
		{".5", 0.5},
		{"1e3", 1000},
		{"2.5e-1", 0.25},
		{"0xff", 255},
		{"0XFF", 255},
	}
	for _, c := range cases {
		toks, err := Tokenize(c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if len(toks) != 2 || toks[0].Kind != Number || toks[0].Num != c.want {
			t.Errorf("%q: got %v", c.src, toks)
		}
	}
}

func TestStrings(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`"abc"`, "abc"},
		{`'abc'`, "abc"},
		{`"a\nb"`, "a\nb"},
		{`"a\tb"`, "a\tb"},
		{`"q\"q"`, `q"q`},
		{`"\x41"`, "A"},
		{`"A"`, "A"},
		{`"\\"`, `\`},
	}
	for _, c := range cases {
		toks, err := Tokenize(c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if toks[0].Kind != String || toks[0].Str != c.want {
			t.Errorf("%q: got %q", c.src, toks[0].Str)
		}
	}
}

func TestOperatorsLongestMatch(t *testing.T) {
	toks, err := Tokenize("a >>> b >> c >>>= d === e == f")
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, tok := range toks {
		if tok.Kind == Punct {
			ops = append(ops, tok.Text)
		}
	}
	want := []string{">>>", ">>", ">>>=", "===", "=="}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op[%d] = %q, want %q", i, ops[i], want[i])
		}
	}
}

func TestCommentsSkipped(t *testing.T) {
	toks, err := Tokenize("a // line\n /* block\n more */ b")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Fatalf("got %v", toks)
	}
}

func TestKeywordsVsIdents(t *testing.T) {
	toks, err := Tokenize("var varx function fn")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != Keyword || toks[1].Kind != Ident || toks[2].Kind != Keyword || toks[3].Kind != Ident {
		t.Fatalf("got %v", kinds(toks))
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("a at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("b at %d:%d", toks[1].Line, toks[1].Col)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"\"unterminated", "'no\nnewline'", "@", "/* open", `"\q"`, "0x"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}
