// Package lexer tokenizes the JavaScript subset. It supports decimal and hex
// numeric literals, single- and double-quoted strings with the common escape
// sequences, line and block comments, and the full operator set of the
// subset grammar.
package lexer

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind classifies tokens.
type Kind uint8

const (
	EOF Kind = iota
	Number
	String
	Ident
	Keyword
	Punct
)

// Token is one lexical token.
type Token struct {
	Kind Kind
	Text string  // identifier / keyword / punctuator text, or raw literal
	Num  float64 // numeric value for Number tokens
	Str  string  // decoded value for String tokens
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case EOF:
		return "<eof>"
	case Number:
		return fmt.Sprintf("num(%v)", t.Num)
	case String:
		return fmt.Sprintf("str(%q)", t.Str)
	default:
		return t.Text
	}
}

var keywords = map[string]bool{
	"var": true, "function": true, "return": true, "if": true, "else": true,
	"for": true, "while": true, "do": true, "break": true, "continue": true,
	"true": true, "false": true, "null": true, "undefined": true,
	"typeof": true, "new": true, "in": true,
	"switch": true, "case": true, "default": true,
}

// Error is a lexical error with position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string { return fmt.Sprintf("lex error at %d:%d: %s", e.Line, e.Col, e.Msg) }

// Lexer scans a source string into tokens.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokenize scans the entire input, returning the token stream terminated by
// an EOF token.
func Tokenize(src string) ([]Token, error) {
	lx := New(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

func (l *Lexer) errf(format string, args ...any) error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errf("unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// puncts are matched longest-first.
var puncts = []string{
	">>>=", "===", "!==", ">>>", "<<=", ">>=",
	"==", "!=", "<=", ">=", "&&", "||", "++", "--",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>",
	"{", "}", "(", ")", "[", "]", ";", ",", ".", "?", ":",
	"+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Line: line, Col: col}, nil
	}
	c := l.peek()
	switch {
	case isDigit(c) || (c == '.' && isDigit(l.peek2())):
		return l.number(line, col)
	case c == '"' || c == '\'':
		return l.stringLit(line, col)
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		k := Ident
		if keywords[text] {
			k = Keyword
		}
		return Token{Kind: k, Text: text, Line: line, Col: col}, nil
	default:
		rest := l.src[l.pos:]
		for _, p := range puncts {
			if strings.HasPrefix(rest, p) {
				for range p {
					l.advance()
				}
				return Token{Kind: Punct, Text: p, Line: line, Col: col}, nil
			}
		}
		return Token{}, l.errf("unexpected character %q", c)
	}
}

func (l *Lexer) number(line, col int) (Token, error) {
	start := l.pos
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		if !isHexDigit(l.peek()) {
			return Token{}, l.errf("malformed hex literal")
		}
		for l.pos < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
		}
		u, err := strconv.ParseUint(l.src[start+2:l.pos], 16, 64)
		if err != nil {
			return Token{}, l.errf("malformed hex literal: %v", err)
		}
		return Token{Kind: Number, Text: l.src[start:l.pos], Num: float64(u), Line: line, Col: col}, nil
	}
	for l.pos < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' {
		l.advance()
		for l.pos < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if !isDigit(l.peek()) {
			return Token{}, l.errf("malformed exponent")
		}
		for l.pos < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	text := l.src[start:l.pos]
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return Token{}, l.errf("malformed number %q: %v", text, err)
	}
	return Token{Kind: Number, Text: text, Num: f, Line: line, Col: col}, nil
}

func (l *Lexer) stringLit(line, col int) (Token, error) {
	quote := l.advance()
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return Token{}, l.errf("unterminated string")
		}
		c := l.advance()
		if c == quote {
			break
		}
		if c == '\n' {
			return Token{}, l.errf("newline in string")
		}
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		if l.pos >= len(l.src) {
			return Token{}, l.errf("unterminated escape")
		}
		e := l.advance()
		switch e {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case 'r':
			b.WriteByte('\r')
		case '0':
			b.WriteByte(0)
		case '\\', '\'', '"':
			b.WriteByte(e)
		case 'x':
			if l.pos+1 >= len(l.src) || !isHexDigit(l.peek()) || !isHexDigit(l.peek2()) {
				return Token{}, l.errf("malformed \\x escape")
			}
			h := string(l.advance()) + string(l.advance())
			u, _ := strconv.ParseUint(h, 16, 8)
			b.WriteByte(byte(u))
		case 'u':
			if l.pos+3 >= len(l.src) {
				return Token{}, l.errf("malformed \\u escape")
			}
			h := ""
			for i := 0; i < 4; i++ {
				if !isHexDigit(l.peek()) {
					return Token{}, l.errf("malformed \\u escape")
				}
				h += string(l.advance())
			}
			u, _ := strconv.ParseUint(h, 16, 32)
			b.WriteRune(rune(u))
		default:
			return Token{}, l.errf("unknown escape \\%c", e)
		}
	}
	return Token{Kind: String, Str: b.String(), Line: line, Col: col}, nil
}
