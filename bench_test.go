package nomap

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates its experiment through the
// harness and reports the headline number as a custom metric, so
// `go test -bench=. -benchmem` reproduces the whole evaluation:
//
//	BenchmarkTable1TierSpeedup   - Table I   (tier speedups over interpreter)
//	BenchmarkFig1Shootout        - Figure 1  (cross-language Shootout model)
//	BenchmarkFig3CheckFrequency  - Figure 3  (checks per 100 FTL instructions)
//	BenchmarkDeoptFrequency      - §III-A2   (deopt rarity)
//	BenchmarkFig8SunSpiderInstr  - Figure 8  (instruction counts, 6 archs)
//	BenchmarkFig9KrakenInstr     - Figure 9
//	BenchmarkFig10SunSpiderTime  - Figure 10 (execution time, 6 archs)
//	BenchmarkFig11KrakenTime     - Figure 11
//	BenchmarkTable4TxChar        - Table IV  (transaction footprints)
//
// Absolute magnitudes are simulation-model dependent; the shapes (who wins,
// by what factor) are the reproduction targets recorded in EXPERIMENTS.md.

import (
	"strconv"
	"strings"
	"testing"

	"nomap/internal/harness"
	"nomap/internal/profile"
	"nomap/internal/stats"
	"nomap/internal/vm"
	"nomap/internal/workloads"
)

// benchConfig keeps benchmark runtime moderate while staying in steady state.
func benchConfig() harness.Config {
	cfg := harness.DefaultConfig()
	cfg.Warmup = 50
	cfg.Measure = 10
	return cfg
}

func BenchmarkTable1TierSpeedup(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t, err := harness.Table1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Report the FTL-over-interpreter AvgS speedup for SunSpider.
		last := t.Rows[len(t.Rows)-1]
		b.ReportMetric(parseX(last[1]), "FTL-speedup-SunSpider-AvgS")
		b.ReportMetric(parseX(last[3]), "FTL-speedup-Kraken-AvgS")
	}
}

func BenchmarkFig1Shootout(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t, err := harness.Figure1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		mean := t.Rows[len(t.Rows)-1]
		b.ReportMetric(parseF(mean[2]), "JS-over-C")
		b.ReportMetric(parseF(mean[3]), "Python-over-C")
		b.ReportMetric(parseF(mean[5]), "Ruby-over-C")
	}
}

func BenchmarkFig3CheckFrequency(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		for _, suite := range []string{"SunSpider", "Kraken"} {
			t, err := harness.Figure3(suite, cfg)
			if err != nil {
				b.Fatal(err)
			}
			for _, row := range t.Rows {
				if row[0] == "AvgS" {
					b.ReportMetric(parseF(row[len(row)-1]), "checks-per-100-"+suite+"-AvgS")
				}
			}
		}
	}
}

func BenchmarkDeoptFrequency(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t, err := harness.DeoptFrequency(cfg)
		if err != nil {
			b.Fatal(err)
		}
		total := 0.0
		for _, row := range t.Rows {
			total += parseF(row[3])
		}
		b.ReportMetric(total/2, "deopts-per-Mcall")
	}
}

func benchArchFigure(b *testing.B, suite string, f func(string, harness.Config) (*harness.Table, error), metric string) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t, err := f(suite, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range t.Rows {
			if row[0] == "AvgS" && row[1] == "NoMap" {
				b.ReportMetric(100*(1-parseF(row[2])), metric)
			}
			if row[0] == "AvgS" && row[1] == "NoMap_RTM" {
				b.ReportMetric(100*(1-parseF(row[2])), metric+"-RTM")
			}
		}
	}
}

func BenchmarkFig8SunSpiderInstr(b *testing.B) {
	benchArchFigure(b, "SunSpider", harness.InstructionFigure, "instr-reduction-%")
}

func BenchmarkFig9KrakenInstr(b *testing.B) {
	benchArchFigure(b, "Kraken", harness.InstructionFigure, "instr-reduction-%")
}

func BenchmarkFig10SunSpiderTime(b *testing.B) {
	benchArchFigure(b, "SunSpider", harness.TimeFigure, "time-reduction-%")
}

func BenchmarkFig11KrakenTime(b *testing.B) {
	benchArchFigure(b, "Kraken", harness.TimeFigure, "time-reduction-%")
}

func BenchmarkTable4TxChar(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t, err := harness.Table4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(parseF(t.Rows[0][1]), "avg-write-KB-SunSpider")
		b.ReportMetric(parseF(t.Rows[1][1]), "avg-write-KB-Kraken")
	}
}

func BenchmarkAppendixTxOverhead(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t, err := harness.AppendixValidation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Report the largest-transaction overhead percentage (should be
		// well under 1%).
		last := t.Rows[len(t.Rows)-1]
		b.ReportMetric(parseF(strings.TrimSuffix(last[4], "%")), "tx-overhead-%-1024iter")
	}
}

// --- ablation benchmarks: design choices DESIGN.md calls out ---

// BenchmarkAblationTxLevels compares the §V-C transaction placements on a
// large-footprint imaging kernel.
func BenchmarkAblationTxLevels(b *testing.B) {
	w, _ := workloads.ByID("K06")
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		for _, arch := range []vm.Arch{vm.ArchBase, vm.ArchNoMap, vm.ArchNoMapRTM} {
			m, err := harness.Run(w, arch, profile.TierFTL, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(m.Counters.TxCommits), arch.String()+"-commits")
			b.ReportMetric(float64(m.Counters.TxCapacityAborts), arch.String()+"-capacity-aborts")
		}
	}
}

// BenchmarkAblationSOF isolates the Sticky Overflow Flag: NoMap_B (bounds
// combining only) vs NoMap (adds SOF) on the overflow-check-dense S10.
func BenchmarkAblationSOF(b *testing.B) {
	w, _ := workloads.ByID("S10")
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		mB, err := harness.Run(w, vm.ArchNoMapB, profile.TierFTL, cfg)
		if err != nil {
			b.Fatal(err)
		}
		mN, err := harness.Run(w, vm.ArchNoMap, profile.TierFTL, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(mB.Counters.Checks[stats.CheckOverflow]), "overflow-checks-NoMap_B")
		b.ReportMetric(float64(mN.Counters.Checks[stats.CheckOverflow]), "overflow-checks-NoMap")
		b.ReportMetric(100*(1-float64(mN.Counters.TotalInstr())/float64(mB.Counters.TotalInstr())), "SOF-instr-reduction-%")
	}
}

// BenchmarkAblationBoundsCombining isolates bounds-check combining on the
// bounds-check-dense S13 (crypto-aes), the paper's showcase for the pass.
func BenchmarkAblationBoundsCombining(b *testing.B) {
	w, _ := workloads.ByID("S13")
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		mS, err := harness.Run(w, vm.ArchNoMapS, profile.TierFTL, cfg)
		if err != nil {
			b.Fatal(err)
		}
		mB, err := harness.Run(w, vm.ArchNoMapB, profile.TierFTL, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(mS.Counters.Checks[stats.CheckBounds]), "bounds-checks-NoMap_S")
		b.ReportMetric(float64(mB.Counters.Checks[stats.CheckBounds]), "bounds-checks-NoMap_B")
	}
}

// BenchmarkEngineThroughput measures raw simulator speed (simulated
// instructions per second) for profiling the reproduction itself.
func BenchmarkEngineThroughput(b *testing.B) {
	w, _ := workloads.ByID("S10")
	cfg := benchConfig()
	var simInstr int64
	for i := 0; i < b.N; i++ {
		m, err := harness.Run(w, vm.ArchNoMap, profile.TierFTL, cfg)
		if err != nil {
			b.Fatal(err)
		}
		simInstr += m.Counters.TotalInstr()
	}
	b.ReportMetric(float64(simInstr)/b.Elapsed().Seconds(), "sim-instr/s")
}

func parseX(s string) float64 { return parseF(strings.TrimSuffix(s, "x")) }

func parseF(s string) float64 {
	f, _ := strconv.ParseFloat(strings.TrimSpace(s), 64)
	return f
}
