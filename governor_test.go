package nomap

import (
	"testing"

	"nomap/internal/core"
	"nomap/internal/governor"
	"nomap/internal/jit"
	"nomap/internal/oracle"
	"nomap/internal/profile"
	"nomap/internal/vm"
	"nomap/internal/workloads"
)

// Governor acceptance tests: each adversarial workload (A01..A04) defeats a
// naive post-abort policy in a different way, and the governor must recover
// surgically — restoring one SMP instead of burning the deopt budget,
// re-promoting after a phase change, and keeping the FTL tier when only the
// transactions were the problem.

// newGovVM builds an FTL-capable engine with a deopt budget high enough that
// the legacy policy's behaviour is visible rather than capped by tier bans.
func newGovVM(t *testing.T, arch vm.Arch, legacy bool) (*vm.VM, *jit.Backend) {
	t.Helper()
	cfg := vm.DefaultConfig()
	cfg.Arch = arch
	cfg.MaxTier = profile.TierFTL
	cfg.Policy = profile.Policy{BaselineThreshold: 2, DFGThreshold: 8, FTLThreshold: 40, MaxDeopts: 200}
	v := vm.New(cfg)
	b := jit.Attach(v)
	if legacy {
		pol := governor.DefaultPolicy(!arch.HeavyweightHTM())
		pol.Legacy = true
		b.SetGovernorPolicy(pol)
	}
	return v, b
}

func runWorkload(t *testing.T, v *vm.VM, w workloads.Workload, calls int) string {
	t.Helper()
	if _, err := v.Run(w.Source); err != nil {
		t.Fatalf("%s setup: %v", w.ID, err)
	}
	var last string
	for i := 0; i < calls; i++ {
		r, err := v.CallGlobal("run")
		if err != nil {
			t.Fatalf("%s call %d: %v", w.ID, i, err)
		}
		last = r.ToStringValue()
	}
	return last
}

func mustWorkload(t *testing.T, id string) workloads.Workload {
	t.Helper()
	w, ok := workloads.ByID(id)
	if !ok {
		t.Fatalf("unknown workload %s", id)
	}
	return w
}

// TestAbortStormSMPRestoration: A01's combined bounds check fails on every
// call once the loop's trip count drops to zero, and no feedback refresh can
// heal it. The governor must silence the storm by restoring that one SMP —
// keeping the function at full transaction level with a bounded number of
// recompiles — and cut total aborts at least 10x against the legacy policy.
func TestAbortStormSMPRestoration(t *testing.T) {
	w := mustWorkload(t, "A01")
	const calls = 120

	vGov, bGov := newGovVM(t, vm.ArchNoMap, false)
	resGov := runWorkload(t, vGov, w, calls)
	vLeg, _ := newGovVM(t, vm.ArchNoMap, true)
	resLeg := runWorkload(t, vLeg, w, calls)
	if resGov != resLeg {
		t.Fatalf("governor changed results: %q vs legacy %q", resGov, resLeg)
	}

	cg, cl := vGov.Counters(), vLeg.Counters()
	if cl.TxAborts < 10*cg.TxAborts || cg.TxAborts == 0 {
		t.Errorf("aborts: governor=%d legacy=%d, want >=10x reduction", cg.TxAborts, cl.TxAborts)
	}
	// The storm is a site problem, not a footprint problem: the transaction
	// level must not retreat.
	if lvl := bGov.Governor().LevelFor("run"); lvl != core.TxLoopNest {
		t.Errorf("level = %v after check storm, want loop-nest", lvl)
	}
	if bGov.Governor().KeepSet("run") == nil {
		t.Error("no SMP restored for the storming site")
	}
	// Bounded recompilation: one compile per pre-budget abort plus the
	// keep-set recompile — not one per call like the legacy policy.
	budget := bGov.Governor().Policy().CheckAbortBudget
	if cg.Compilations[profile.TierFTL] > budget+2 {
		t.Errorf("governor FTL compiles = %d, want <= %d", cg.Compilations[profile.TierFTL], budget+2)
	}
	if cl.Compilations[profile.TierFTL] < 10*cg.Compilations[profile.TierFTL] {
		t.Errorf("legacy FTL compiles = %d vs governor %d: storm did not stress the legacy policy",
			cl.Compilations[profile.TierFTL], cg.Compilations[profile.TierFTL])
	}
	// The wasted-work ledger attributes the squashed cycles to check aborts.
	if cg.CyclesSquashed == 0 || cg.CyclesSquashedBy[0] != cg.CyclesSquashed {
		t.Errorf("squashed ledger: total=%d by-check=%d, want all check-attributed",
			cg.CyclesSquashed, cg.CyclesSquashedBy[0])
	}
}

// TestPhaseChangeRepromotion: A03's first calls overflow capacity and drive
// the §V-C retreat; the footprint then shrinks permanently. The governor
// must climb back to loop-nest via probation and commit transactions in
// steady state, where the legacy one-way retreat stays demoted forever.
func TestPhaseChangeRepromotion(t *testing.T) {
	w := mustWorkload(t, "A03")
	v, b := newGovVM(t, vm.ArchNoMap, false)
	runWorkload(t, v, w, 200)
	if lvl := b.Governor().LevelFor("run"); lvl != core.TxLoopNest {
		t.Fatalf("level = %v after phase change, want re-promoted loop-nest", lvl)
	}
	// Steady state at the re-promoted level: transactions commit, no aborts.
	// (Call run() directly — re-running the setup would reset phaseCalls and
	// restart the big phase.)
	v.ResetCounters()
	for i := 0; i < 20; i++ {
		if _, err := v.CallGlobal("run"); err != nil {
			t.Fatalf("steady-state call %d: %v", i, err)
		}
	}
	c := v.Counters()
	if c.TxCommits == 0 {
		t.Error("no commits in steady state after re-promotion")
	}
	if c.TxAborts != 0 {
		t.Errorf("%d aborts in steady state, want 0", c.TxAborts)
	}

	// The legacy policy is stranded below loop-nest by the same history.
	vLeg, bLeg := newGovVM(t, vm.ArchNoMap, true)
	runWorkload(t, vLeg, w, 200)
	if lvl := bLeg.Governor().LevelFor("run"); lvl == core.TxLoopNest {
		t.Error("legacy policy unexpectedly recovered to loop-nest")
	}
}

// TestIrrevocableKeepsFTL: A04's print() aborts irrevocably on the first
// transactional run. The governor drops the function to TxOff, pinned, and
// keeps the FTL tier without charging the deopt budget — one abort total.
func TestIrrevocableKeepsFTL(t *testing.T) {
	w := mustWorkload(t, "A04")
	v, b := newGovVM(t, vm.ArchNoMap, false)
	runWorkload(t, v, w, 120)
	c := v.Counters()
	if c.TxIrrevocableAborts != 1 || c.TxAborts != 1 {
		t.Errorf("aborts = %d (irrevocable %d), want exactly 1", c.TxAborts, c.TxIrrevocableAborts)
	}
	if lvl := b.Governor().LevelFor("run"); lvl != core.TxOff {
		t.Errorf("level = %v, want off", lvl)
	}
	rep := b.Governor().Report()
	if len(rep) != 1 || !rep[0].Pinned {
		t.Errorf("function not pinned: %+v", rep)
	}
	if c.Deopts != 0 {
		t.Errorf("deopt budget charged %d times for an irrevocable abort", c.Deopts)
	}
	if c.FTLCalls < 50 {
		t.Errorf("FTLCalls = %d: function lost the FTL tier", c.FTLCalls)
	}
	if c.TxBegins != 1 {
		t.Errorf("TxBegins = %d after pinning to TxOff, want 1", c.TxBegins)
	}
}

// TestGovernorOracleSweep runs the PR-1 fault-injection oracle over the
// phase-change workload with the governor active: injected aborts land
// before, during, and after probationary windows across all six
// architecture configurations, and every run must stay observationally
// equivalent to the interpreter with clean counter invariants.
func TestGovernorOracleSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep re-runs the phase-change workload dozens of times")
	}
	w := mustWorkload(t, "A03")
	cfg := oracle.DefaultConfig()
	cfg.CapacityPoints = 1
	cfg.RandomTrials = 2
	rep, err := oracle.Sweep(oracle.Program{Name: w.ID, Setup: w.Source, Calls: 90}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures {
		t.Errorf("%s", f)
	}
	for _, ar := range rep.Archs {
		if len(ar.Sites) == 0 {
			t.Errorf("%v: no injection sites enumerated", ar.Arch)
		}
	}
	t.Logf("%s: %d sites, %d runs, %d injected aborts",
		rep.Program, rep.TotalSites(), rep.TotalRuns(), rep.TotalInjectedAborts())
}

// TestBackendResetDeterminism is the regression guard for the oracle's
// differential protocol: Reset must return a backend to its post-Attach
// condition, so re-running the same program yields bit-identical counters —
// no governor ledger or cached code may leak between runs.
func TestBackendResetDeterminism(t *testing.T) {
	w := mustWorkload(t, "A01")
	const calls = 60

	// Fresh engine: the reference counter trace.
	vRef, _ := newGovVM(t, vm.ArchNoMap, false)
	refRes := runWorkload(t, vRef, w, calls)
	ref := *vRef.Counters()

	// Same engine, second pass after Reset: the first pass drove the
	// governor into a restored-SMP state that Reset must fully discard.
	v, b := newGovVM(t, vm.ArchNoMap, false)
	runWorkload(t, v, w, calls)
	b.Reset()
	v.ResetCounters()
	res := runWorkload(t, v, w, calls)
	got := *v.Counters()

	if res != refRes {
		t.Fatalf("result after Reset: %q, want %q", res, refRes)
	}
	if got != ref {
		t.Errorf("counters diverged after Reset:\n got %+v\nwant %+v", got, ref)
	}
}
