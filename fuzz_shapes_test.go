package nomap

// Shape-transition differential fuzzing: pseudo-random programs whose object
// populations span the whole inline-cache spectrum — monomorphic sites,
// polymorphic sites up to the dispatch-way limit, megamorphic sites past it,
// and mid-loop property adds that exercise transition speculation — must
// behave identically in the interpreter and in the tiered configurations,
// with the IC subsystem on and off.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// genShapeProgram builds a deterministic random shape-transition program
// from seed. It creates a receiver population of 1..10 distinct hidden
// classes (distinct property-insertion orders), each carrying a method slot
// bound to one of a few small callees, and a run(n) loop mixing method
// dispatch, polymorphic property reads/writes, and speculated property adds.
func genShapeProgram(seed int64) string {
	r := rand.New(rand.NewSource(seed))
	var sb strings.Builder

	// Callee pool: every method is a pure function of its argument, so a
	// wrong-way dispatch is observable in the sum.
	callees := 2 + r.Intn(3)
	for c := 0; c < callees; c++ {
		switch r.Intn(4) {
		case 0:
			fmt.Fprintf(&sb, "function m%d(x) { return (x + %d) | 0; }\n", c, 1+r.Intn(9))
		case 1:
			fmt.Fprintf(&sb, "function m%d(x) { return (x * %d) | 0; }\n", c, 3+r.Intn(5))
		case 2:
			fmt.Fprintf(&sb, "function m%d(x) { return (x ^ %d) & 255; }\n", c, r.Intn(64))
		default:
			fmt.Fprintf(&sb, "function m%d(x) { return (x + x + %d) | 0; }\n", c, r.Intn(7))
		}
	}

	// Receiver population: shapes gets a distinct hidden class per family by
	// prefixing f distinct padding properties before the common ones. 1 shape
	// is a monomorphic site, 2..8 polymorphic, 9..10 megamorphic.
	shapes := 1 + r.Intn(10)
	size := 16 + 8*r.Intn(5)
	fmt.Fprintf(&sb, "var R = new Array(%d);\n", size)
	fmt.Fprintf(&sb, "for (var i = 0; i < %d; i++) {\n", size)
	for fam := 0; fam < shapes; fam++ {
		cond := fmt.Sprintf("if (i %% %d == %d) ", shapes, fam)
		if fam == shapes-1 {
			cond = ""
		}
		var pads strings.Builder
		for p := 0; p <= fam; p++ {
			fmt.Fprintf(&pads, "p%d: %d, ", p, p)
		}
		fmt.Fprintf(&sb, "  %sR[i] = {%sv: i, m: m%d};\n", cond, pads.String(), r.Intn(callees))
		if fam == shapes-1 {
			break
		}
		sb.WriteString("  else ")
		sb.WriteString("\n")
	}
	sb.WriteString("}\n")

	// Fresh-object factory for transition speculation: insertion order
	// alternates, and the hot loop adds a property the factory never set.
	fmt.Fprintf(&sb, "function mk(i) {\n")
	fmt.Fprintf(&sb, "  if ((i & 1) == 0) return {a: i, b: %d};\n", r.Intn(16))
	fmt.Fprintf(&sb, "  return {b: %d, a: i};\n}\n", r.Intn(16))

	fmt.Fprintf(&sb, "function run(n) {\n  var s = 0;\n")
	fmt.Fprintf(&sb, "  for (var i = 0; i < n; i++) {\n")
	fmt.Fprintf(&sb, "    var o = R[i %% %d];\n", size)
	stmts := 1 + r.Intn(3)
	for k := 0; k < stmts; k++ {
		switch r.Intn(5) {
		case 0:
			fmt.Fprintf(&sb, "    s = (s + o.m(i & %d)) | 0;\n", 7+8*r.Intn(4))
		case 1:
			fmt.Fprintf(&sb, "    s = (s + o.v) | 0;\n")
		case 2:
			fmt.Fprintf(&sb, "    o.v = (o.v + %d) %% 100000;\n", 1+r.Intn(5))
		default:
			fmt.Fprintf(&sb, "    var t = mk(i);\n    t.c = i & %d;\n    s = (s + t.a + t.c) | 0;\n", 15+16*r.Intn(3))
		}
	}
	sb.WriteString("  }\n  return s;\n}\n")
	// o.v mutates across calls, which is fine: every engine executes the
	// identical call sequence from identical initial state.
	return sb.String()
}

// shapeSeq runs src's call protocol on one engine configuration.
func shapeSeq(t *testing.T, opts Options, src string, calls, n int) []string {
	t.Helper()
	eng := NewEngine(opts)
	if _, err := eng.Run(src); err != nil {
		t.Fatalf("setup: %v\n%s", err, src)
	}
	out := make([]string, calls)
	for i := 0; i < calls; i++ {
		v, err := eng.Call("run", n)
		if err != nil {
			t.Fatalf("call %d: %v\n%s", i, err, src)
		}
		out[i] = v.ToStringValue()
	}
	return out
}

// FuzzShapes is the native fuzzing entry point over the shape grammar: every
// generated program must behave identically in the interpreter and in the
// tiered NoMap configurations — and under ArchNoMap additionally with the
// inline-cache subsystem disabled, so a divergence attributable to dispatch
// trees alone cannot hide behind generic-path agreement. The committed
// corpus under testdata/fuzz/FuzzShapes seeds the search.
func FuzzShapes(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		src := genShapeProgram(seed)
		const calls, n = 700, 48
		want := shapeSeq(t, Options{MaxTier: TierInterp}, src, calls, n)
		check := func(label string, got []string) {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d %s call %d: got %q want %q\nprogram:\n%s",
						seed, label, i, got[i], want[i], src)
				}
			}
		}
		for _, arch := range []Arch{ArchNoMap, ArchNoMapBC, ArchNoMapRTM} {
			check(arch.String(), shapeSeq(t, Options{MaxTier: TierFTL, Arch: arch}, src, calls, n))
		}
		check("NoMap ic-off", shapeSeq(t, Options{MaxTier: TierFTL, Arch: ArchNoMap, DisableIC: true}, src, calls, n))
	})
}

func TestFuzzShapes(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			src := genShapeProgram(seed)
			const calls, n = 700, 48
			want := shapeSeq(t, Options{MaxTier: TierInterp}, src, calls, n)
			for _, arch := range []Arch{ArchBase, ArchNoMap, ArchNoMapBC, ArchNoMapRTM} {
				got := shapeSeq(t, Options{MaxTier: TierFTL, Arch: arch}, src, calls, n)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("arch %v call %d: got %q want %q\nprogram:\n%s",
							arch, i, got[i], want[i], src)
					}
				}
			}
			got := shapeSeq(t, Options{MaxTier: TierFTL, Arch: ArchNoMap, DisableIC: true}, src, calls, n)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("ic-off call %d: got %q want %q\nprogram:\n%s", i, got[i], want[i], src)
				}
			}
		})
	}
}
