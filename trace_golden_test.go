package nomap

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// TestTraceGolden pins the engine's full event stream — every compile,
// transaction begin/commit, abort, and deopt, in order — for a fixed program
// under NoMap. The engine is deterministic, so any drift in this trace is a
// behaviour change: a pass reordering, a tier-up policy change, a transaction
// boundary moving. Run with -update to accept an intended change, and review
// the golden diff like code.
func TestTraceGolden(t *testing.T) {
	eng := NewEngine(Options{Arch: ArchNoMap})
	var lines []string
	eng.SetTracer(func(e TraceEvent) { lines = append(lines, e.String()) })

	src := `
var a = [];
for (var i = 0; i < 32; i++) a[i] = i;
var o = {sum: 0};
function run(n) {
  var s = 0;
  for (var i = 0; i < n; i++) {
    s = (s + a[i]) | 0;
    o.sum = o.sum + 1;
  }
  return s;
}
`
	if _, err := eng.Run(src); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 520; i++ {
		if _, err := eng.Call("run", 32); err != nil {
			t.Fatal(err)
		}
	}
	// One deopt-inducing type change, then a short recovery window: the
	// trace must show the abort, the re-profile, and the recompilation.
	if _, err := eng.Run(`a[20] = 0.5;`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		if _, err := eng.Call("run", 32); err != nil {
			t.Fatal(err)
		}
	}

	got := strings.Join(lines, "\n") + "\n"
	goldenPath := filepath.Join("testdata", "golden", "trace_nomap.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d events)", goldenPath, len(lines))
		return
	}
	wantBytes, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run `go test -run TraceGolden -update` to create it)", err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	t.Errorf("trace drifted from %s (re-run with -update if intended):\n%s",
		goldenPath, diffLines(want, got))
}

// diffLines renders a compact first-divergence diff with context.
func diffLines(want, got string) string {
	w := strings.Split(strings.TrimRight(want, "\n"), "\n")
	g := strings.Split(strings.TrimRight(got, "\n"), "\n")
	i := 0
	for i < len(w) && i < len(g) && w[i] == g[i] {
		i++
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d golden lines, %d current; first divergence at line %d\n", len(w), len(g), i+1)
	start := i - 3
	if start < 0 {
		start = 0
	}
	for k := start; k < i; k++ {
		fmt.Fprintf(&sb, "  %4d   %s\n", k+1, w[k])
	}
	for k := i; k < i+5 && k < len(w); k++ {
		fmt.Fprintf(&sb, "  %4d - %s\n", k+1, w[k])
	}
	for k := i; k < i+5 && k < len(g); k++ {
		fmt.Fprintf(&sb, "  %4d + %s\n", k+1, g[k])
	}
	return sb.String()
}
