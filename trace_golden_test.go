package nomap

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nomap/internal/htm"
	"nomap/internal/jit"
	"nomap/internal/machine"
	"nomap/internal/profile"
	"nomap/internal/value"
	"nomap/internal/vm"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// TestTraceGolden pins the engine's full event stream — every compile,
// transaction begin/commit, abort, and deopt, in order — for a fixed program
// under NoMap. The engine is deterministic, so any drift in this trace is a
// behaviour change: a pass reordering, a tier-up policy change, a transaction
// boundary moving. Run with -update to accept an intended change, and review
// the golden diff like code.
func TestTraceGolden(t *testing.T) {
	eng := NewEngine(Options{Arch: ArchNoMap})
	var lines []string
	eng.SetTracer(func(e TraceEvent) { lines = append(lines, e.String()) })

	src := `
var a = [];
for (var i = 0; i < 32; i++) a[i] = i;
var o = {sum: 0};
function run(n) {
  var s = 0;
  for (var i = 0; i < n; i++) {
    s = (s + a[i]) | 0;
    o.sum = o.sum + 1;
  }
  return s;
}
`
	if _, err := eng.Run(src); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 520; i++ {
		if _, err := eng.Call("run", 32); err != nil {
			t.Fatal(err)
		}
	}
	// One deopt-inducing type change, then a short recovery window: the
	// trace must show the abort, the re-profile, and the recompilation.
	if _, err := eng.Run(`a[20] = 0.5;`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		if _, err := eng.Call("run", 32); err != nil {
			t.Fatal(err)
		}
	}

	checkGolden(t, "trace_nomap.golden", lines)
}

// TestTraceGoldenOSR pins the trace of a single-invocation hot loop with a
// mid-loop type change: the function OSR-enters FTL mid-call (osr-entry
// event), runs transactionally up to the type change, aborts the loop-nest
// transaction, recovers in Baseline, and re-enters a fresh artifact — which
// aborts at the same site, because Baseline resumes before the type change
// and the profile stays pure-int. After the abort budget the governor's
// per-header OSR ledger disables the entry and Baseline finishes the call.
// The whole ladder happens inside one run() call and the result is exact.
func TestTraceGoldenOSR(t *testing.T) {
	eng := NewEngine(Options{Arch: ArchNoMap})
	var lines []string
	eng.SetTracer(func(e TraceEvent) { lines = append(lines, e.String()) })

	src := `
var a = new Array(64);
for (var i = 0; i < 64; i++) a[i] = i;
function run() {
  var s = 0;
  for (var i = 0; i < 30000; i++) {
    if (i == 25000) a[5] = 0.5;
    s = s + a[i & 63];
  }
  return s;
}
`
	if _, err := eng.Run(src); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Call("run"); err != nil {
		t.Fatal(err)
	}

	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "[osr-entry] run") {
		t.Fatalf("single call produced no osr-entry event:\n%s", joined)
	}
	checkGolden(t, "trace_osr.golden", lines)
}

// TestTraceGoldenConflict pins the shared-heap contention ladder end to end:
// a forced-conflict probe kills the first four transactional attempts of a
// one-worker counter section, so the trace must show conflict-abort →
// contention-backoff (three randomized windows) → fallback-acquire (the
// governor demotes the site on the fourth conflict) → eight clean fallback
// executions → repromote → a transactional commit. The scheduled executor
// is deterministic per seed, so any drift here is a recovery-policy change.
func TestTraceGoldenConflict(t *testing.T) {
	wl := &machine.SharedWorkload{
		Name:  "conflict",
		Decls: []machine.SharedDecl{{Kind: machine.DeclCounter, Name: "hot"}},
		Workers: []machine.SharedScript{
			{Rounds: 11, Sections: []machine.SharedSection{
				{{Kind: machine.OpAdd, Target: "hot", Imm: 1}},
			}},
		},
	}
	var lines []string
	forced := 0
	res, err := machine.RunScheduled(wl, vm.ArchNoMap, 7, machine.SharedOptions{
		Tracer: func(e machine.Event) { lines = append(lines, e.String()) },
		Configure: func(id int, sys *htm.System) {
			sys.SetConflictProbe(func(write bool, line uint64) bool {
				if forced < 4 {
					forced++
					return true
				}
				return false
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := "hot=11"; res.Snapshot != want {
		t.Fatalf("final heap %q, want %q", res.Snapshot, want)
	}
	joined := strings.Join(lines, "\n")
	for _, must := range []string{"cause=conflict", "contention-backoff", "fallback-acquire", "repromote"} {
		if !strings.Contains(joined, must) {
			t.Fatalf("trace is missing %q:\n%s", must, joined)
		}
	}
	checkGolden(t, "trace_conflict.golden", lines)
}

// TestTraceGoldenIC pins the inline-cache subsystem's whole event ladder for
// one fixed program under ArchBase (no transactions, so the trace is pure
// compile/deopt/IC events). The program's run() holds three speculation
// sites: a polymorphic method call over two receiver shapes, a two-shape
// property get, and a transition-speculating store. The phases:
//
//  1. Warm-up: the DFG then FTL artifacts fill their dispatch trees
//     (ic-fill per site), and the first matched receiver of each way logs
//     ic-hit; the first speculated property add logs ic-transition.
//
//  2. A third receiver shape appears: the method tree's tail guard fails
//     (ic-miss with the stale shape), the deopt re-profiles it, and the
//     recompile fills a wider tree.
//
//  3. Three more fresh shapes arrive one at a time. Each repeats the
//     miss→refill cycle until the site's dispatch-miss ledger crosses the
//     governor's budget: the fourth miss demotes the site (ic-demote), and
//     the final artifact keeps the method call generic while the unaffected
//     get/set trees still fill.
func TestTraceGoldenIC(t *testing.T) {
	cfg := vm.DefaultConfig()
	cfg.Arch = vm.ArchBase
	cfg.Policy = profile.Policy{BaselineThreshold: 2, DFGThreshold: 8, FTLThreshold: 40, MaxDeopts: 16}
	v := vm.New(cfg)
	b := jit.Attach(v)
	var lines []string
	b.Machine().SetTracer(func(e machine.Event) { lines = append(lines, e.String()) })

	src := `
function fa(x) { return x + 1; }
function fb(x) { return (x * 3) | 0; }
var A = new Array(16);
for (var i = 0; i < 16; i++) {
  if ((i & 1) == 0) A[i] = {k: i, m: fa};
  else A[i] = {p: 1, k: i, m: fb};
}
function mk(i) {
  if ((i & 1) == 0) return {a: i, b: 0};
  return {b: 0, a: i};
}
function run(n) {
  var s = 0;
  for (var i = 0; i < n; i++) {
    var t = mk(i);
    t.c = i & 7;
    s = s + A[i & 15].m(i & 7) + t.a + t.c;
  }
  return s;
}
`
	if _, err := v.Run(src); err != nil {
		t.Fatal(err)
	}
	call := func(times int) {
		t.Helper()
		for i := 0; i < times; i++ {
			if _, err := v.CallGlobal("run", value.Int(32)); err != nil {
				t.Fatal(err)
			}
		}
	}
	call(50)
	// Four fresh receiver shapes, one per phase: each forces a tail-guard
	// miss and a refill, and the fourth crosses the dispatch-miss budget.
	for n, poison := range []string{
		`A[3] = {q0: 1, k: 3, m: fa};`,
		`A[5] = {q1: 1, q0: 1, k: 5, m: fb};`,
		`A[7] = {q2: 1, q1: 1, k: 7, m: fa};`,
		`A[9] = {q3: 1, q2: 1, k: 9, m: fb};`,
	} {
		if _, err := v.Run(poison); err != nil {
			t.Fatalf("poison %d: %v", n, err)
		}
		call(12)
	}

	joined := strings.Join(lines, "\n")
	last := -1
	for _, must := range []string{"[ic-fill]", "[ic-hit]", "[ic-transition]", "[ic-miss]", "[ic-demote]"} {
		at := strings.Index(joined, must)
		if at < 0 {
			t.Fatalf("trace is missing %s:\n%s", must, joined)
		}
		if at < last {
			t.Fatalf("%s appears before the preceding ladder stage:\n%s", must, joined)
		}
		last = at
	}
	checkGolden(t, "trace_ic.golden", lines)
}

// checkGolden compares the event lines against testdata/golden/<name>,
// rewriting the file under -update.
func checkGolden(t *testing.T, name string, lines []string) {
	t.Helper()
	got := strings.Join(lines, "\n") + "\n"
	goldenPath := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d events)", goldenPath, len(lines))
		return
	}
	wantBytes, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run `go test -run TraceGolden -update` to create it)", err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	t.Errorf("trace drifted from %s (re-run with -update if intended):\n%s",
		goldenPath, diffLines(want, got))
}

// diffLines renders a compact first-divergence diff with context.
func diffLines(want, got string) string {
	w := strings.Split(strings.TrimRight(want, "\n"), "\n")
	g := strings.Split(strings.TrimRight(got, "\n"), "\n")
	i := 0
	for i < len(w) && i < len(g) && w[i] == g[i] {
		i++
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d golden lines, %d current; first divergence at line %d\n", len(w), len(g), i+1)
	start := i - 3
	if start < 0 {
		start = 0
	}
	for k := start; k < i; k++ {
		fmt.Fprintf(&sb, "  %4d   %s\n", k+1, w[k])
	}
	for k := i; k < i+5 && k < len(w); k++ {
		fmt.Fprintf(&sb, "  %4d - %s\n", k+1, w[k])
	}
	for k := i; k < i+5 && k < len(g); k++ {
		fmt.Fprintf(&sb, "  %4d + %s\n", k+1, g[k])
	}
	return sb.String()
}
