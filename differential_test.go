package nomap

import (
	"fmt"
	"testing"
)

// Differential testing: the same program must produce identical results in
// every tier and under every architecture configuration. This is the
// strongest correctness statement about NoMap — the transformation is
// supposed to be semantics-preserving even though it reads garbage past
// removed bounds checks and rolls the world back on aborts.

// programs exercise the speculation surface: int arithmetic with and
// without overflow, doubles, property access, dense and holey arrays,
// calls, strings, and deopt-inducing type changes.
var differentialPrograms = []struct {
	name string
	src  string
}{
	{"int-sum-loop", `
function run() {
  var a = [];
  for (var i = 0; i < 200; i++) a[i] = i;
  var s = 0;
  for (var j = 0; j < 200; j++) s += a[j];
  return s;
}
var r = 0;
for (var k = 0; k < 800; k++) r = run();
var result = r;`},

	{"figure4-object-sum", `
var obj = {values: [], sum: 0};
for (var i = 0; i < 100; i++) obj.values[i] = i * 3;
function run() {
  obj.sum = 0;
  var len = obj.values.length;
  for (var idx = 0; idx < len; idx++) {
    obj.sum += obj.values[idx];
  }
  return obj.sum;
}
var r = 0;
for (var k = 0; k < 800; k++) r = run();
var result = r;`},

	{"overflow-promotes", `
function run(seed) {
  var x = seed;
  var s = 0;
  for (var i = 0; i < 64; i++) {
    x = x * 3 + 1;
    s += x % 1000;
  }
  return s;
}
var r = 0;
for (var k = 0; k < 800; k++) r = run(k % 7 + 1);
var result = r;`},

	{"double-math", `
function run(n) {
  var s = 0.0;
  for (var i = 1; i <= n; i++) {
    s += Math.sqrt(i) + Math.sin(i * 0.1);
  }
  return Math.floor(s * 1000);
}
var r = 0;
for (var k = 0; k < 700; k++) r = run(50);
var result = r;`},

	{"nested-loops-matrix", `
function run(n) {
  var m = [];
  for (var i = 0; i < n; i++) {
    m[i] = [];
    for (var j = 0; j < n; j++) m[i][j] = i * n + j;
  }
  var t = 0;
  for (var i2 = 0; i2 < n; i2++)
    for (var j2 = 0; j2 < n; j2++)
      t += m[i2][j2];
  return t;
}
var r = 0;
for (var k = 0; k < 700; k++) r = run(8);
var result = r;`},

	{"holey-array", `
var a = [];
a[0] = 1; a[2] = 3; a[5] = 8;
function run() {
  var s = 0;
  for (var i = 0; i < 6; i++) {
    var v = a[i];
    if (v === undefined) s += 100; else s += v;
  }
  return s;
}
var r = 0;
for (var k = 0; k < 800; k++) r = run();
var result = r;`},

	{"direct-calls", `
function leaf(x, y) { return (x * y + 3) % 97; }
function run(n) {
  var s = 0;
  for (var i = 0; i < n; i++) s += leaf(i, n - i);
  return s;
}
var r = 0;
for (var k = 0; k < 800; k++) r = run(60);
var result = r;`},

	{"bitops-crc", `
function run(n) {
  var crc = 0xFFFFFFFF | 0;
  for (var i = 0; i < n; i++) {
    crc = (crc ^ (i & 0xFF)) | 0;
    for (var j = 0; j < 4; j++) {
      crc = ((crc >> 1) ^ (0xEDB88320 & (0 - (crc & 1)))) | 0;
    }
  }
  return crc;
}
var r = 0;
for (var k = 0; k < 700; k++) r = run(32);
var result = r;`},

	{"string-build", `
function run(n) {
  var s = "";
  for (var i = 0; i < n; i++) s += String.fromCharCode(65 + (i % 26));
  var h = 0;
  for (var j = 0; j < s.length; j++) h = (h * 31 + s.charCodeAt(j)) | 0;
  return h;
}
var r = 0;
for (var k = 0; k < 600; k++) r = run(40);
var result = r;`},

	{"late-type-change-deopt", `
function run(a, n) {
  var s = 0;
  for (var i = 0; i < n; i++) s += a[i];
  return s;
}
var ints = [];
var mixed = [];
for (var i = 0; i < 100; i++) { ints[i] = i; mixed[i] = i + 0.5; }
var r = 0;
for (var k = 0; k < 800; k++) r = run(ints, 100);
r += run(mixed, 100);
var result = r;`},

	{"store-grows-array", `
function run(n) {
  var a = [];
  for (var i = 0; i < n; i++) a[i] = i * 2;
  var s = 0;
  for (var j = n - 1; j >= 0; j--) s += a[j];
  return s;
}
var r = 0;
for (var k = 0; k < 800; k++) r = run(64);
var result = r;`},

	{"conditional-accumulate", `
function run(n) {
  var even = 0, odd = 0;
  for (var i = 0; i < n; i++) {
    if ((i & 1) === 0) even += i; else odd += i;
  }
  return even * 100000 + odd;
}
var r = 0;
for (var k = 0; k < 800; k++) r = run(100);
var result = r;`},

	{"early-exit-search", `
var data = [];
for (var i = 0; i < 128; i++) data[i] = (i * 37) % 128;
function run(target) {
  for (var i = 0; i < data.length; i++) {
    if (data[i] === target) return i;
  }
  return -1;
}
var r = 0;
for (var k = 0; k < 800; k++) r += run(k % 140);
var result = r;`},

	{"int32-boundary", `
function run() {
  var x = 2147483640;
  var s = 0;
  for (var i = 0; i < 20; i++) {
    x = x + 1;
    s = s + (x % 7);
  }
  return s;
}
var r = 0;
for (var k = 0; k < 800; k++) r = run();
var result = r;`},
}

func TestDifferentialAcrossTiersAndArchs(t *testing.T) {
	for _, p := range differentialPrograms {
		p := p
		t.Run(p.name, func(t *testing.T) {
			// Reference: interpreter only.
			ref := NewEngine(Options{MaxTier: TierInterp})
			want, err := ref.Run(p.src)
			if err != nil {
				t.Fatalf("interpreter reference: %v", err)
			}
			// All tiers on Base.
			for _, tier := range []Tier{TierBaseline, TierDFG, TierFTL} {
				eng := NewEngine(Options{MaxTier: tier, Arch: ArchBase})
				got, err := eng.Run(p.src)
				if err != nil {
					t.Fatalf("tier %v: %v", tier, err)
				}
				if got.ToStringValue() != want.ToStringValue() {
					t.Errorf("tier %v: result %q, want %q", tier, got, want)
				}
			}
			// FTL under every architecture configuration.
			for _, arch := range AllArchs {
				eng := NewEngine(Options{MaxTier: TierFTL, Arch: arch})
				got, err := eng.Run(p.src)
				if err != nil {
					t.Fatalf("arch %v: %v", arch, err)
				}
				if got.ToStringValue() != want.ToStringValue() {
					t.Errorf("arch %v: result %q, want %q", arch, got, want)
				}
			}
		})
	}
}

// The FTL tier must actually be reached on these workloads; otherwise the
// differential test proves nothing about NoMap.
func TestDifferentialReachesFTL(t *testing.T) {
	for _, p := range differentialPrograms {
		eng := NewEngine(Options{MaxTier: TierFTL, Arch: ArchNoMap})
		if _, err := eng.Run(p.src); err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		if eng.Stats().FTLCalls == 0 {
			t.Errorf("%s: FTL tier never executed", p.name)
		}
	}
}

// NoMap must form and commit transactions on loop-heavy workloads.
func TestDifferentialUsesTransactions(t *testing.T) {
	counts := 0
	for _, p := range differentialPrograms {
		eng := NewEngine(Options{MaxTier: TierFTL, Arch: ArchNoMap})
		if _, err := eng.Run(p.src); err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		if eng.Stats().TxCommits > 0 {
			counts++
		}
	}
	if counts < len(differentialPrograms)/2 {
		t.Errorf("only %d/%d programs committed transactions", counts, len(differentialPrograms))
	}
}

func ExampleEngine() {
	eng := NewEngine(Options{Arch: ArchNoMap})
	res, err := eng.Run(`
function sum(a, n) { var s = 0; for (var i = 0; i < n; i++) s += a[i]; return s; }
var arr = [];
for (var i = 0; i < 100; i++) arr[i] = i;
var result = sum(arr, 100);
`)
	if err != nil {
		panic(err)
	}
	fmt.Println(res)
	// Output: 4950
}
