package nomap

import (
	"testing"

	"nomap/internal/bytecode"
	"nomap/internal/governor"
	"nomap/internal/jit"
	"nomap/internal/profile"
	"nomap/internal/stats"
	"nomap/internal/vm"
	"nomap/internal/workloads"
)

// runSingleCall runs a workload's setup plus exactly one run() invocation
// under the given configuration and returns the result, the counters, and
// the VM (for profile inspection).
func runSingleCall(t *testing.T, src string, arch vm.Arch, maxTier profile.Tier) (string, *stats.Counters, *vm.VM) {
	t.Helper()
	cfg := vm.DefaultConfig()
	cfg.Arch = arch
	cfg.MaxTier = maxTier
	v := vm.New(cfg)
	jit.Attach(v)
	if _, err := v.Run(src); err != nil {
		t.Fatalf("setup: %v", err)
	}
	r, err := v.CallGlobal("run")
	if err != nil {
		t.Fatalf("run(): %v", err)
	}
	return r.ToStringValue(), v.Counters(), v
}

// profileOf finds the profile of the named function.
func profileOf(t *testing.T, v *vm.VM, name string) *profile.FunctionProfile {
	t.Helper()
	var out *profile.FunctionProfile
	v.EachProfile(func(fn *bytecode.Function, p *profile.FunctionProfile) {
		if fn.Name == name {
			out = p
		}
	})
	if out == nil {
		t.Fatalf("no profile for %q", name)
	}
	return out
}

// A single invocation of a hot loop must tier up mid-execution via OSR entry
// under NoMap — invocation counting alone can never promote it — and the
// optimized run must agree byte-for-byte with the interpreter while being at
// least 2x faster.
func TestOSREntrySingleCallHotLoop(t *testing.T) {
	w, ok := workloads.ByID("singlecall")
	if !ok {
		t.Fatal("singlecall workload not registered")
	}

	interpRes, interpCtrs, _ := runSingleCall(t, w.Source, vm.ArchBase, profile.TierInterp)
	nomapRes, nomapCtrs, _ := runSingleCall(t, w.Source, vm.ArchNoMap, profile.TierFTL)

	if nomapRes != interpRes {
		t.Fatalf("result diverged: NoMap %q vs interpreter %q", nomapRes, interpRes)
	}
	if nomapCtrs.OSREntries == 0 {
		t.Fatal("single-invocation hot loop never entered optimized code mid-run (OSREntries = 0)")
	}
	if nomapCtrs.Instr[stats.TMOpt] == 0 {
		t.Error("OSR-entered FTL code executed no transactionally-optimized instructions")
	}
	slow, fast := interpCtrs.TotalCycles(), nomapCtrs.TotalCycles()
	if fast*2 > slow {
		t.Errorf("OSR entry speedup too small: interp %d cycles, NoMap %d cycles (want >= 2x)", slow, fast)
	}

	// With tier-up capped at Baseline there is no optimized code to enter:
	// the same program must record zero OSR entries and still agree.
	baseRes, baseCtrs, _ := runSingleCall(t, w.Source, vm.ArchNoMap, profile.TierBaseline)
	if baseRes != interpRes {
		t.Fatalf("Baseline-capped result diverged: %q vs %q", baseRes, interpRes)
	}
	if n := baseCtrs.OSREntries; n != 0 {
		t.Errorf("Baseline-capped run recorded %d OSR entries, want 0", n)
	}
}

// Profile counters must be tier-transparent: a run that OSR-enters optimized
// code mid-loop has to account the same invocations and back edges as a pure
// interpreter run of the same program. A drift here means some tier transfer
// dropped or double-counted a frame's accumulated deltas.
func TestOSREntryProfileCountersMatchInterpreter(t *testing.T) {
	progs := []struct {
		name string
		src  string
	}{
		// Clean case: the loop OSR-enters FTL and commits to the end.
		{"clean", `
var CP = new Array(64);
for (var i = 0; i < 64; i++) CP[i] = i;
function run() {
  var s = 0;
  for (var i = 0; i < 30000; i++) s = s + CP[i & 63];
  return s;
}`},
		// Abort case: a type change late in the loop aborts the OSR-entered
		// transaction and recovery re-executes in Baseline.
		{"abort", `
var AP = new Array(64);
for (var i = 0; i < 64; i++) AP[i] = i;
function run() {
  var s = 0;
  for (var i = 0; i < 30000; i++) {
    if (i == 25000) AP[5] = 0.5;
    s = s + AP[i & 63];
  }
  return s;
}`},
	}
	for _, p := range progs {
		t.Run(p.name, func(t *testing.T) {
			interpRes, _, interpVM := runSingleCall(t, p.src, vm.ArchBase, profile.TierInterp)
			nomapRes, ctrs, nomapVM := runSingleCall(t, p.src, vm.ArchNoMap, profile.TierFTL)
			if nomapRes != interpRes {
				t.Fatalf("result diverged: %q vs %q", nomapRes, interpRes)
			}
			if ctrs.OSREntries == 0 {
				t.Fatal("program never OSR-entered; the consistency check would be vacuous")
			}
			want := profileOf(t, interpVM, "run")
			got := profileOf(t, nomapVM, "run")
			if got.InvocationCount != want.InvocationCount {
				t.Errorf("InvocationCount = %d through OSR entry, %d in interpreter", got.InvocationCount, want.InvocationCount)
			}
			if got.BackEdgeCount != want.BackEdgeCount {
				t.Errorf("BackEdgeCount = %d through OSR entry, %d in interpreter", got.BackEdgeCount, want.BackEdgeCount)
			}
		})
	}
}

// SetGovernorPolicy must return the simulated hardware and the code cache to
// their initial condition along with the governor: leaving the old policy's
// compiled code, cache warmth, and HTM begin/commit tallies in place would
// attribute them to the new policy's run and skew every A/B comparison.
func TestSetGovernorPolicyResetsMachineAttribution(t *testing.T) {
	w, ok := workloads.ByID("singlecall")
	if !ok {
		t.Fatal("singlecall workload not registered")
	}
	cfg := vm.DefaultConfig()
	cfg.Arch = vm.ArchNoMap
	v := vm.New(cfg)
	b := jit.Attach(v)
	if _, err := v.Run(w.Source); err != nil {
		t.Fatal(err)
	}
	if _, err := v.CallGlobal("run"); err != nil {
		t.Fatal(err)
	}

	m := b.Machine()
	if m.HTM.Begins == 0 || m.HTM.Commits == 0 {
		t.Fatalf("warm run formed no transactions (begins %d, commits %d); test is vacuous", m.HTM.Begins, m.HTM.Commits)
	}
	if m.Cache.L1.Hits == 0 {
		t.Fatal("warm run left no cache state; test is vacuous")
	}
	if len(b.CompiledFunctions()) == 0 {
		t.Fatal("warm run compiled nothing; test is vacuous")
	}

	b.SetGovernorPolicy(governor.DefaultPolicy(true))

	if m.HTM.Begins != 0 || m.HTM.Commits != 0 {
		t.Errorf("HTM counters survived policy switch: begins %d, commits %d, want 0", m.HTM.Begins, m.HTM.Commits)
	}
	for cause, n := range m.HTM.Aborts {
		if n != 0 {
			t.Errorf("HTM abort counter %d survived policy switch: %d", cause, n)
		}
	}
	if m.Cache.L1.Hits != 0 || m.Cache.L1.Misses != 0 || m.Cache.L2.Hits != 0 || m.Cache.L2.Misses != 0 {
		t.Error("cache hit/miss state survived policy switch")
	}
	if got := len(b.CompiledFunctions()); got != 0 {
		t.Errorf("%d compiled functions survived policy switch, want 0", got)
	}
}
