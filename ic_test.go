package nomap

import (
	"testing"

	"nomap/internal/machine"
	"nomap/internal/oracle"
	"nomap/internal/vm"
	"nomap/internal/workloads"
)

// Inline-cache acceptance tests: the fault-injection oracle must enumerate
// every per-shape dispatch site the P-suite's compiled code contains — each
// way predicate of each shape-guarded dispatch tree, and each tree's
// deopting tail guard — and forcing a miss at any of them, under all six
// architecture configurations, must leave the observable behaviour identical
// to the pure interpreter. The megamorphic control proves the negative: a
// site past saturation never grows a tree, so its sweep sees no dispatch
// sites at all.

// TestOracleShapeGuards sweeps the polymorphic suite. For P01..P04 every
// architecture must expose SiteDispatch injection sites carrying per-shape
// identity (Key.Shape), and the sweep's forced misses — which cascade down
// the guard chain into the deopting tail guard — must all land without
// divergence. P05 must expose none.
func TestOracleShapeGuards(t *testing.T) {
	cfg := oracle.DefaultConfig()
	cfg.CapacityPoints = 1
	cfg.RandomTrials = 2
	wantDispatch := map[string]bool{"P01": true, "P02": true, "P03": true, "P04": true, "P05": false}
	for _, id := range []string{"P01", "P02", "P03", "P04", "P05"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			w, ok := workloads.ByID(id)
			if !ok {
				t.Fatalf("unknown workload %s", id)
			}
			rep, err := oracle.Sweep(oracle.Program{
				Name:  w.ID,
				Setup: w.Source,
				Calls: 12,
			}, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range rep.Failures {
				t.Errorf("%s", f)
			}
			for _, ar := range rep.Archs {
				dispatch, shaped := 0, 0
				for _, s := range ar.Sites {
					if s.Key.Kind != machine.SiteDispatch {
						continue
					}
					dispatch++
					if s.Key.Shape != "" {
						shaped++
					}
				}
				if wantDispatch[id] {
					if dispatch == 0 {
						t.Errorf("%v: no dispatch-tree injection sites enumerated", ar.Arch)
					}
					if shaped == 0 {
						t.Errorf("%v: dispatch sites carry no per-shape identity", ar.Arch)
					}
				} else if dispatch != 0 {
					t.Errorf("%v: megamorphic control exposed %d dispatch sites", ar.Arch, dispatch)
				}
			}
			t.Logf("%s: %d sites, %d runs, %d injected aborts",
				rep.Program, rep.TotalSites(), rep.TotalRuns(), rep.TotalInjectedAborts())
		})
	}
}

// TestOracleStaleShapeCache plants the IC subsystem's nightmare bug — a
// dispatch predicate reporting a hit for a receiver whose hidden class does
// not match (a stale shape cache), so the wrong way's specialized body runs
// — and demands the differential oracle catch the divergence on every
// polymorphic workload. The same programs must be clean without the bug, so
// the divergence is attributable to the stale cache alone. The megamorphic
// control has no dispatch trees, so the bug has nothing to corrupt there and
// the run must stay clean even with the injector installed.
func TestOracleStaleShapeCache(t *testing.T) {
	bug := oracle.NewStaleShapeBug()
	for _, id := range []string{"P01", "P02", "P03", "P04"} {
		w, _ := workloads.ByID(id)
		p := oracle.Program{Name: w.ID, Setup: w.Source, Calls: 12}
		if d, _ := oracle.DivergesUnderInjector(p, vm.ArchNoMap, nil); d {
			t.Errorf("%s diverges even without the planted bug", id)
			continue
		}
		diverged, detail := oracle.DivergesUnderInjector(p, vm.ArchNoMap, bug)
		if !diverged {
			t.Errorf("%s: planted stale-shape-cache bug not caught", id)
			continue
		}
		t.Logf("%s: caught: %s", id, detail)
	}
	w, _ := workloads.ByID("P05")
	p := oracle.Program{Name: w.ID, Setup: w.Source, Calls: 12}
	if d, detail := oracle.DivergesUnderInjector(p, vm.ArchNoMap, bug); d {
		t.Errorf("megamorphic control diverged under the stale-shape bug: %s", detail)
	}
}
