//go:build !race

package nomap

// raceDetectorEnabled mirrors the race build tag so the heaviest
// differential matrices can scale themselves down under -race (the detector
// costs ~10x; full coverage runs in the regular suite).
const raceDetectorEnabled = false
