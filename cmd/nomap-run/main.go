// nomap-run executes a JavaScript-subset source file (or a named built-in
// workload) under a chosen architecture configuration and tier cap, then
// reports the engine's measurements.
//
// Usage:
//
//	nomap-run program.js
//	nomap-run -arch nomap -stats program.js
//	nomap-run -workload S18 -arch base -stats
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nomap/internal/harness"
	"nomap/internal/jit"
	"nomap/internal/machine"
	"nomap/internal/profile"
	"nomap/internal/stats"
	"nomap/internal/vm"
	"nomap/internal/workloads"
)

var archNames = map[string]vm.Arch{
	"base":      vm.ArchBase,
	"nomap_s":   vm.ArchNoMapS,
	"nomap_b":   vm.ArchNoMapB,
	"nomap":     vm.ArchNoMap,
	"nomap_bc":  vm.ArchNoMapBC,
	"nomap_rtm": vm.ArchNoMapRTM,
}

var tierNames = map[string]profile.Tier{
	"interp":   profile.TierInterp,
	"baseline": profile.TierBaseline,
	"dfg":      profile.TierDFG,
	"ftl":      profile.TierFTL,
}

func main() {
	archName := flag.String("arch", "base", "architecture: base|nomap_s|nomap_b|nomap|nomap_bc|nomap_rtm")
	tierName := flag.String("tier", "ftl", "maximum tier: interp|baseline|dfg|ftl")
	workloadID := flag.String("workload", "", "run a built-in workload (e.g. S18, K06) instead of a file")
	showStats := flag.Bool("stats", false, "print instruction/cycle/check/transaction statistics")
	steady := flag.Bool("steady", false, "with -workload: warm up and report steady-state statistics")
	trace := flag.Bool("trace", false, "stream transaction/deopt/compile events to stderr")
	flag.Parse()

	arch, ok := archNames[strings.ToLower(*archName)]
	if !ok {
		fatalf("unknown architecture %q", *archName)
	}
	tier, ok := tierNames[strings.ToLower(*tierName)]
	if !ok {
		fatalf("unknown tier %q", *tierName)
	}

	var src string
	if *workloadID != "" {
		w, ok := workloads.ByID(*workloadID)
		if !ok {
			fatalf("unknown workload %q", *workloadID)
		}
		if *steady {
			m, err := harness.Run(w, arch, tier, harness.DefaultConfig())
			if err != nil {
				fatalf("%v", err)
			}
			fmt.Printf("%s (%s) under %v: result=%s\n", w.ID, w.Name, arch, m.Result)
			printStats(&m.Counters)
			return
		}
		src = w.Source + "\nvar result = run();\n"
	} else {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: nomap-run [flags] program.js  (or -workload ID)")
			flag.PrintDefaults()
			os.Exit(2)
		}
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		src = string(data)
	}

	cfg := vm.DefaultConfig()
	cfg.Arch = arch
	cfg.MaxTier = tier
	v := vm.New(cfg)
	backend := jit.Attach(v)
	if *trace {
		backend.Machine().SetTracer(func(e machine.Event) {
			fmt.Fprintln(os.Stderr, e)
		})
	}

	res, err := v.Run(src)
	if err != nil {
		fatalf("%v", err)
	}
	for _, line := range v.Output {
		fmt.Println(line)
	}
	if !res.IsUndefined() {
		fmt.Printf("result = %s\n", res.ToStringValue())
	}
	if *showStats {
		printStats(v.Counters())
	}
}

func printStats(c *stats.Counters) {
	fmt.Printf("instructions: total=%d NoFTL=%d NoTM=%d TMUnopt=%d TMOpt=%d\n",
		c.TotalInstr(), c.Instr[stats.NoFTL], c.Instr[stats.NoTM], c.Instr[stats.TMUnopt], c.Instr[stats.TMOpt])
	fmt.Printf("cycles:       total=%d NonTM=%d TM=%d\n", c.TotalCycles(), c.CyclesNonTM, c.CyclesTM)
	fmt.Printf("checks:       total=%d bounds=%d overflow=%d type=%d property=%d other=%d\n",
		c.TotalChecks(), c.Checks[stats.CheckBounds], c.Checks[stats.CheckOverflow],
		c.Checks[stats.CheckType], c.Checks[stats.CheckProperty], c.Checks[stats.CheckOther])
	fmt.Printf("tiers:        interpOps=%d baselineOps=%d dfgCalls=%d ftlCalls=%d deopts=%d\n",
		c.InterpOps, c.BaselineOps, c.DFGCalls, c.FTLCalls, c.Deopts)
	fmt.Printf("transactions: begins=%d commits=%d aborts=%d (check=%d capacity=%d sof=%d)\n",
		c.TxBegins, c.TxCommits, c.TxAborts, c.TxCheckAborts, c.TxCapacityAborts, c.TxSOFAborts)
	if c.TxCommits > 0 {
		fmt.Printf("tx footprint: avg=%.1fKB max=%.1fKB maxAssoc=%d\n",
			float64(c.TxWriteBytesTotal)/float64(c.TxCommits)/1024,
			float64(c.TxWriteBytesMax)/1024, c.TxMaxAssoc)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "nomap-run: "+format+"\n", args...)
	os.Exit(1)
}
