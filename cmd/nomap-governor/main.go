// nomap-governor inspects the abort-recovery governor: it runs one workload
// under one architecture configuration, then prints the transaction and
// wasted-work counters next to the governor's per-function, per-site state.
// The adversarial workloads (A01..A04) each exercise one arm of the policy.
//
// Usage:
//
//	nomap-governor -workload A01                 # abort storm, NoMap config
//	nomap-governor -workload A03 -arch NoMap_RTM -calls 300
//	nomap-governor -workload A01 -legacy         # pre-governor A/B baseline
//	nomap-governor -workload A01 -max-squashed 40000   # CI ceiling (exit 1)
package main

import (
	"flag"
	"fmt"
	"os"

	"nomap/internal/governor"
	"nomap/internal/jit"
	"nomap/internal/profile"
	"nomap/internal/vm"
	"nomap/internal/workloads"
)

func main() {
	workload := flag.String("workload", "A01", "workload ID (A01..A04, S01.., K01..)")
	archName := flag.String("arch", "NoMap", "architecture configuration")
	calls := flag.Int("calls", 200, "number of run() calls")
	legacy := flag.Bool("legacy", false, "use the pre-governor recovery policy (A/B baseline)")
	maxDeopts := flag.Int64("max-deopts", 200, "whole-function deopt budget (high so the legacy policy is visible, not capped)")
	maxSquashed := flag.Int64("max-squashed", -1, "exit 1 if CyclesSquashed exceeds this ceiling (-1 disables)")
	flag.Parse()

	arch, ok := archByName(*archName)
	if !ok {
		fmt.Fprintf(os.Stderr, "nomap-governor: unknown arch %q (want one of %v)\n", *archName, vm.AllArchs)
		os.Exit(2)
	}
	w, ok := workloads.ByID(*workload)
	if !ok {
		fmt.Fprintf(os.Stderr, "nomap-governor: unknown workload %q\n", *workload)
		os.Exit(2)
	}

	cfg := vm.DefaultConfig()
	cfg.Arch = arch
	cfg.MaxTier = profile.TierFTL
	cfg.Policy = profile.Policy{BaselineThreshold: 2, DFGThreshold: 8, FTLThreshold: 40, MaxDeopts: *maxDeopts}
	v := vm.New(cfg)
	b := jit.Attach(v)
	if *legacy {
		pol := governor.DefaultPolicy(!arch.HeavyweightHTM())
		pol.Legacy = true
		b.SetGovernorPolicy(pol)
	}

	if _, err := v.Run(w.Source); err != nil {
		fmt.Fprintf(os.Stderr, "nomap-governor: %s setup: %v\n", w.ID, err)
		os.Exit(1)
	}
	var last string
	for i := 0; i < *calls; i++ {
		r, err := v.CallGlobal("run")
		if err != nil {
			fmt.Fprintf(os.Stderr, "nomap-governor: %s call %d: %v\n", w.ID, i, err)
			os.Exit(1)
		}
		last = r.ToStringValue()
	}

	c := v.Counters()
	fmt.Printf("%s (%s) under %v, %d calls, policy=%s\n", w.ID, w.Name, arch, *calls, policyName(*legacy))
	fmt.Printf("  result            %s\n", last)
	fmt.Printf("  FTL calls         %d (compiles: baseline=%d dfg=%d ftl=%d)\n",
		c.FTLCalls, c.Compilations[profile.TierBaseline], c.Compilations[profile.TierDFG], c.Compilations[profile.TierFTL])
	fmt.Printf("  deopts / OSR      %d / %d\n", c.Deopts, c.OSRExits)
	fmt.Printf("  tx begin/commit   %d / %d\n", c.TxBegins, c.TxCommits)
	fmt.Printf("  tx aborts         %d  (check=%d capacity=%d sof=%d irrevocable=%d)\n",
		c.TxAborts, c.TxCheckAborts, c.TxCapacityAborts, c.TxSOFAborts, c.TxIrrevocableAborts)
	fmt.Printf("  cycles squashed   %d  (check=%d capacity=%d sof=%d irrevocable=%d) of %d TM cycles\n",
		c.CyclesSquashed, c.CyclesSquashedBy[0], c.CyclesSquashedBy[1], c.CyclesSquashedBy[2], c.CyclesSquashedBy[3], c.CyclesTM)

	fmt.Println("  governor state:")
	for _, fr := range b.Governor().Report() {
		flags := ""
		if fr.Probing {
			flags += " probing"
		}
		if fr.Pinned {
			flags += " pinned"
		}
		fmt.Printf("    %-12s level=%v proven=%v failed=%d window=%d progress=%d%s\n",
			fr.Fn, fr.Level, fr.Proven, fr.FailedProbes, fr.Window, fr.Progress, flags)
		for _, s := range fr.Sites {
			kept := ""
			if s.Kept {
				kept = " [SMP restored]"
			}
			fmt.Printf("      site pc=%d class=%v aborts=%d deopts=%d%s\n",
				s.Site.PC, s.Site.Class, s.Aborts, s.Deopts, kept)
		}
	}

	if *maxSquashed >= 0 && c.CyclesSquashed > *maxSquashed {
		fmt.Fprintf(os.Stderr, "nomap-governor: CyclesSquashed %d exceeds ceiling %d\n", c.CyclesSquashed, *maxSquashed)
		os.Exit(1)
	}
}

func archByName(name string) (vm.Arch, bool) {
	for _, a := range vm.AllArchs {
		if a.String() == name {
			return a, true
		}
	}
	return 0, false
}

func policyName(legacy bool) string {
	if legacy {
		return "legacy"
	}
	return "governor"
}
