// nomap-bench regenerates the paper's evaluation: Table I, Figure 1,
// Figure 3, the §III-A2 deoptimization counts, Figures 8-11, and Table IV.
//
// Usage:
//
//	nomap-bench                     # run every experiment
//	nomap-bench -experiment fig8    # one experiment
//	nomap-bench -warmup 80 -measure 30
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"nomap/internal/harness"
	"nomap/internal/pool"
	"nomap/internal/vm"
	"nomap/internal/workloads"
)

func main() {
	experiment := flag.String("experiment", "all",
		"experiment to run: all|table1|fig1|fig3|deoptfreq|fig8|fig9|fig10|fig11|table4|recovery|appendix")
	warmup := flag.Int("warmup", 60, "warm-up run() calls before measuring")
	measure := flag.Int("measure", 20, "measured steady-state run() calls")
	parallel := flag.Int("parallel", 0,
		"fan the benchmark suite across a K-worker isolate pool instead of running experiments; "+
			"per-benchmark results are verified against a serial pass before any speedup is reported")
	jsonOut := flag.String("json", "",
		"write a BENCH_<n>.json perf snapshot (per-workload steady-state timings and counters "+
			"under Arch=NoMap, plus cold single-call OSR workloads) to this path instead of running experiments")
	compare := flag.String("compare", "",
		"measure a fresh snapshot and print per-workload, per-suite, and overall geomean cycle "+
			"deltas against this baseline BENCH_<n>.json; combine with -json to also write the "+
			"fresh snapshot; exits non-zero past -max-regress")
	maxRegress := flag.Float64("max-regress", 2.0,
		"with -compare: fail when the overall cycle geomean regresses by more than this percent")
	verbose := flag.Bool("v", false, "print per-measurement progress")
	flag.Parse()

	if *parallel > 0 {
		if err := runParallel(*parallel, *measure); err != nil {
			fmt.Fprintf(os.Stderr, "nomap-bench: -parallel: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := harness.DefaultConfig()
	cfg.Warmup = *warmup
	cfg.Measure = *measure

	if *compare != "" {
		start := time.Now()
		if err := compareBench(*compare, *jsonOut, *maxRegress, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "nomap-bench: -compare: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("compared against %s in %.1fs\n", *compare, time.Since(start).Seconds())
		return
	}
	if *jsonOut != "" {
		start := time.Now()
		if err := emitBenchJSON(*jsonOut, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "nomap-bench: -json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s in %.1fs\n", *jsonOut, time.Since(start).Seconds())
		return
	}
	if *verbose {
		cfg.Progress = func(w workloads.Workload, arch vm.Arch) {
			fmt.Fprintf(os.Stderr, "  measured %s (%s) under %v\n", w.ID, w.Name, arch)
		}
	}

	type exp struct {
		name string
		run  func(harness.Config) (*harness.Table, error)
	}
	experiments := []exp{
		{"table1", harness.Table1},
		{"fig1", harness.Figure1},
		{"fig3", func(c harness.Config) (*harness.Table, error) { return figurePair(c, harness.Figure3) }},
		{"deoptfreq", harness.DeoptFrequency},
		{"fig8", func(c harness.Config) (*harness.Table, error) { return harness.InstructionFigure("SunSpider", c) }},
		{"fig9", func(c harness.Config) (*harness.Table, error) { return harness.InstructionFigure("Kraken", c) }},
		{"fig10", func(c harness.Config) (*harness.Table, error) { return harness.TimeFigure("SunSpider", c) }},
		{"fig11", func(c harness.Config) (*harness.Table, error) { return harness.TimeFigure("Kraken", c) }},
		{"table4", harness.Table4},
		{"recovery", harness.RecoveryTable},
		{"appendix", harness.AppendixValidation},
	}

	ran := 0
	for _, e := range experiments {
		if *experiment != "all" && *experiment != e.name {
			continue
		}
		ran++
		start := time.Now()
		t, err := e.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nomap-bench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println(t.Render())
		fmt.Printf("[%s completed in %.1fs]\n\n", e.name, time.Since(start).Seconds())
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "nomap-bench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

// runParallel fans the benchmark suite (SunSpider + Kraken + the
// adversarial programs) across a K-worker isolate pool and reports the
// wall-clock speedup over a 1-worker serial pass of the same trace.
// Correctness comes first: every parallel response is verified
// byte-identical to its serial counterpart before any number is printed.
// The speedup is real parallelism only when GOMAXPROCS cores back the
// workers; on a single-core host the expected ratio is ~1x and the run
// still verifies the differential guarantee.
func runParallel(k, calls int) error {
	var suite []workloads.Workload
	suite = append(suite, workloads.SunSpider()...)
	suite = append(suite, workloads.Kraken()...)
	suite = append(suite, workloads.Adversarial()...)
	const repeats = 3

	cfg := vm.DefaultConfig()
	cfg.Arch = vm.ArchNoMap
	cfg.Policy = harness.FastPolicy()

	type pass struct {
		wall    time.Duration
		results map[string][]string
	}
	runPass := func(workers int) (pass, error) {
		p := pool.New(pool.Config{
			Workers:    workers,
			QueueDepth: repeats * len(suite),
			VM:         cfg,
		})
		defer p.Close()
		type tag struct {
			id string
			ch <-chan pool.Response
		}
		start := time.Now()
		var inflight []tag
		for r := 0; r < repeats; r++ {
			for _, w := range suite {
				ch, err := p.Submit(pool.Request{Source: w.Source, Calls: calls})
				if err != nil {
					return pass{}, fmt.Errorf("%s: %w", w.ID, err)
				}
				inflight = append(inflight, tag{id: w.ID, ch: ch})
			}
		}
		out := pass{results: make(map[string][]string, len(suite))}
		for _, t := range inflight {
			resp := <-t.ch
			if resp.Err != nil {
				return pass{}, fmt.Errorf("%s: %w", t.id, resp.Err)
			}
			if prev, ok := out.results[t.id]; ok {
				for i := range resp.Results {
					if resp.Results[i] != prev[i] {
						return pass{}, fmt.Errorf("%s: repeat diverges within one pass", t.id)
					}
				}
			} else {
				out.results[t.id] = resp.Results
			}
		}
		out.wall = time.Since(start)
		return out, nil
	}

	serial, err := runPass(1)
	if err != nil {
		return fmt.Errorf("serial pass: %w", err)
	}
	par, err := runPass(k)
	if err != nil {
		return fmt.Errorf("parallel pass: %w", err)
	}
	for id, want := range serial.results {
		got, ok := par.results[id]
		if !ok || len(got) != len(want) {
			return fmt.Errorf("%s: parallel pass lost results", id)
		}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("%s call %d: parallel %q != serial %q — refusing to report a speedup for wrong answers",
					id, i, got[i], want[i])
			}
		}
	}
	fmt.Printf("nomap-bench -parallel: %d benchmarks x %d repeats x %d calls, all results verified against serial\n",
		len(suite), repeats, calls)
	fmt.Printf("  serial   (1 worker):  %v\n", serial.wall.Round(time.Millisecond))
	fmt.Printf("  parallel (%d workers): %v\n", k, par.wall.Round(time.Millisecond))
	fmt.Printf("  speedup: %.2fx on %d CPU(s) (GOMAXPROCS %d; expect ~1x when workers outnumber cores)\n",
		serial.wall.Seconds()/par.wall.Seconds(), runtime.NumCPU(), runtime.GOMAXPROCS(0))
	return nil
}

// figurePair runs Figure 3 for both suites and merges the tables.
func figurePair(cfg harness.Config, f func(string, harness.Config) (*harness.Table, error)) (*harness.Table, error) {
	a, err := f("SunSpider", cfg)
	if err != nil {
		return nil, err
	}
	b, err := f("Kraken", cfg)
	if err != nil {
		return nil, err
	}
	a.Title += "\n\n" + b.Render()
	return a, nil
}
