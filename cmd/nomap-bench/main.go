// nomap-bench regenerates the paper's evaluation: Table I, Figure 1,
// Figure 3, the §III-A2 deoptimization counts, Figures 8-11, and Table IV.
//
// Usage:
//
//	nomap-bench                     # run every experiment
//	nomap-bench -experiment fig8    # one experiment
//	nomap-bench -warmup 80 -measure 30
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nomap/internal/harness"
	"nomap/internal/vm"
	"nomap/internal/workloads"
)

func main() {
	experiment := flag.String("experiment", "all",
		"experiment to run: all|table1|fig1|fig3|deoptfreq|fig8|fig9|fig10|fig11|table4|recovery|appendix")
	warmup := flag.Int("warmup", 60, "warm-up run() calls before measuring")
	measure := flag.Int("measure", 20, "measured steady-state run() calls")
	verbose := flag.Bool("v", false, "print per-measurement progress")
	flag.Parse()

	cfg := harness.DefaultConfig()
	cfg.Warmup = *warmup
	cfg.Measure = *measure
	if *verbose {
		cfg.Progress = func(w workloads.Workload, arch vm.Arch) {
			fmt.Fprintf(os.Stderr, "  measured %s (%s) under %v\n", w.ID, w.Name, arch)
		}
	}

	type exp struct {
		name string
		run  func(harness.Config) (*harness.Table, error)
	}
	experiments := []exp{
		{"table1", harness.Table1},
		{"fig1", harness.Figure1},
		{"fig3", func(c harness.Config) (*harness.Table, error) { return figurePair(c, harness.Figure3) }},
		{"deoptfreq", harness.DeoptFrequency},
		{"fig8", func(c harness.Config) (*harness.Table, error) { return harness.InstructionFigure("SunSpider", c) }},
		{"fig9", func(c harness.Config) (*harness.Table, error) { return harness.InstructionFigure("Kraken", c) }},
		{"fig10", func(c harness.Config) (*harness.Table, error) { return harness.TimeFigure("SunSpider", c) }},
		{"fig11", func(c harness.Config) (*harness.Table, error) { return harness.TimeFigure("Kraken", c) }},
		{"table4", harness.Table4},
		{"recovery", harness.RecoveryTable},
		{"appendix", harness.AppendixValidation},
	}

	ran := 0
	for _, e := range experiments {
		if *experiment != "all" && *experiment != e.name {
			continue
		}
		ran++
		start := time.Now()
		t, err := e.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nomap-bench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println(t.Render())
		fmt.Printf("[%s completed in %.1fs]\n\n", e.name, time.Since(start).Seconds())
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "nomap-bench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

// figurePair runs Figure 3 for both suites and merges the tables.
func figurePair(cfg harness.Config, f func(string, harness.Config) (*harness.Table, error)) (*harness.Table, error) {
	a, err := f("SunSpider", cfg)
	if err != nil {
		return nil, err
	}
	b, err := f("Kraken", cfg)
	if err != nil {
		return nil, err
	}
	a.Title += "\n\n" + b.Render()
	return a, nil
}
