package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"nomap/internal/harness"
	"nomap/internal/jit"
	"nomap/internal/machine"
	"nomap/internal/profile"
	"nomap/internal/stats"
	"nomap/internal/vm"
	"nomap/internal/workloads"
)

// benchEntry is one workload's steady-state snapshot under Arch=NoMap.
type benchEntry struct {
	ID        string  `json:"id"`
	Suite     string  `json:"suite"`
	WallMS    float64 `json:"wall_ms"`
	Cycles    int64   `json:"cycles"`
	Instr     int64   `json:"instr"`
	TxCommits int64   `json:"tx_commits"`
	TxAborts  int64   `json:"tx_aborts"`
	// TxCallBlamed counts capacity aborts whose transaction contained a
	// call (§V-C HadCalls blame); the inliner's job is to keep this at zero
	// for monomorphic call-heavy loops.
	TxCallBlamed int64  `json:"tx_call_blamed,omitempty"`
	Deopts       int64  `json:"deopts"`
	OSREntries   int64  `json:"osr_entries"`
	Result       string `json:"result"`
}

// benchFile is the BENCH_<n>.json schema: one record per PR so the perf
// trajectory of the repo is recorded alongside the code.
type benchFile struct {
	Schema    int          `json:"schema"`
	Arch      string       `json:"arch"`
	Warmup    int          `json:"warmup"`
	Measure   int          `json:"measure"`
	Workloads []benchEntry `json:"workloads"`
}

// emitBenchJSON measures every suite under Arch=NoMap at TierFTL and writes
// the snapshot to path.
func emitBenchJSON(path string, cfg harness.Config) error {
	out, err := measureBench(cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// measureBench runs the full snapshot protocol. The OSR suite is measured
// differently on purpose: one cold call, no warm-up and no counter reset,
// because the thing being recorded is the mid-execution tier-up itself
// (OSREntries > 0 in the snapshot proves the single call reached optimized
// code).
func measureBench(cfg harness.Config) (benchFile, error) {
	out := benchFile{Schema: 1, Arch: vm.ArchNoMap.String(), Warmup: cfg.Warmup, Measure: cfg.Measure}

	var steady []workloads.Workload
	steady = append(steady, workloads.SunSpider()...)
	steady = append(steady, workloads.Kraken()...)
	steady = append(steady, workloads.Adversarial()...)
	steady = append(steady, workloads.CallHeavy()...)
	steady = append(steady, workloads.Poly()...)
	steady = append(steady, workloads.Numeric()...)
	for _, w := range steady {
		start := time.Now()
		m, err := harness.Run(w, vm.ArchNoMap, profile.TierFTL, cfg)
		if err != nil {
			return out, fmt.Errorf("%s: %w", w.ID, err)
		}
		out.Workloads = append(out.Workloads, snapshot(w, &m.Counters, m.Result, time.Since(start)))
	}
	for _, w := range workloads.OSREntry() {
		e, err := coldCall(w, cfg)
		if err != nil {
			return out, err
		}
		out.Workloads = append(out.Workloads, e)
	}
	for _, wl := range workloads.Contention() {
		e, err := contentionRun(wl)
		if err != nil {
			return out, err
		}
		out.Workloads = append(out.Workloads, e)
	}
	return out, nil
}

// contentionRun snapshots one shared-heap contention workload under the
// seeded scheduler. The interleaving is a pure function of the seed, so the
// cycle total and the final heap state are exact: a changed Result here means
// the concurrency machinery computed a different shared state, and a changed
// cycle count means the abort/backoff/fallback ladder shifted.
func contentionRun(wl *machine.SharedWorkload) (benchEntry, error) {
	start := time.Now()
	res, err := machine.RunScheduled(wl, vm.ArchNoMap, 1, machine.SharedOptions{})
	if err != nil {
		return benchEntry{}, fmt.Errorf("%s: %w", wl.Name, err)
	}
	c := res.Merged
	return benchEntry{
		ID:        wl.Name,
		Suite:     "Contention",
		WallMS:    float64(time.Since(start).Microseconds()) / 1000,
		Cycles:    c.TotalCycles(),
		Instr:     c.TotalInstr(),
		TxCommits: c.TxCommits,
		TxAborts:  c.TxAborts,
		Result:    fmt.Sprintf("%s accs=%v", res.Snapshot, res.Accs),
	}, nil
}

// coldCall runs a workload's setup plus exactly one run() invocation on a
// fresh engine and snapshots the whole call, tier-up included.
func coldCall(w workloads.Workload, cfg harness.Config) (benchEntry, error) {
	vcfg := vm.DefaultConfig()
	vcfg.Arch = vm.ArchNoMap
	if cfg.Policy != (profile.Policy{}) {
		vcfg.Policy = cfg.Policy
	}
	v := vm.New(vcfg)
	jit.Attach(v)
	if _, err := v.Run(w.Source); err != nil {
		return benchEntry{}, fmt.Errorf("%s setup: %w", w.ID, err)
	}
	start := time.Now()
	r, err := v.CallGlobal("run")
	if err != nil {
		return benchEntry{}, fmt.Errorf("%s run: %w", w.ID, err)
	}
	return snapshot(w, v.Counters(), r.ToStringValue(), time.Since(start)), nil
}

func snapshot(w workloads.Workload, c *stats.Counters, result string, wall time.Duration) benchEntry {
	return benchEntry{
		ID:           w.ID,
		Suite:        w.Suite,
		WallMS:       float64(wall.Microseconds()) / 1000,
		Cycles:       c.TotalCycles(),
		Instr:        c.TotalInstr(),
		TxCommits:    c.TxCommits,
		TxAborts:     c.TxAborts,
		TxCallBlamed: c.TxCallBlamedAborts,
		Deopts:       c.Deopts,
		OSREntries:   c.OSREntries,
		Result:       result,
	}
}
