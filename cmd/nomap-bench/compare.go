package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"nomap/internal/harness"
)

// compareBench measures a fresh snapshot with the current engine, diffs its
// simulated cycles against a committed baseline file, and fails (non-nil
// error) when the geometric-mean regression exceeds maxRegress percent.
// Results are part of the contract too: a workload whose steady-state result
// drifted from the baseline is an error regardless of its cycle count, so a
// "speedup" can never be bought with a wrong answer. Workloads present on
// only one side (suite additions or removals) are reported but excluded from
// the geomean.
func compareBench(oldPath, jsonOut string, maxRegress float64, cfg harness.Config) error {
	data, err := os.ReadFile(oldPath)
	if err != nil {
		return err
	}
	var old benchFile
	if err := json.Unmarshal(data, &old); err != nil {
		return fmt.Errorf("%s: %w", oldPath, err)
	}
	cur, err := measureBench(cfg)
	if err != nil {
		return err
	}
	if jsonOut != "" {
		out, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(out, '\n'), 0o644); err != nil {
			return err
		}
	}

	oldByID := make(map[string]benchEntry, len(old.Workloads))
	for _, e := range old.Workloads {
		oldByID[e.ID] = e
	}

	type suiteAcc struct {
		logSum float64
		n      int
	}
	suites := map[string]*suiteAcc{}
	var suiteOrder []string
	total := suiteAcc{}
	var resultDrift []string

	fmt.Printf("cycle deltas vs %s (negative = faster):\n", oldPath)
	for _, e := range cur.Workloads {
		o, ok := oldByID[e.ID]
		delete(oldByID, e.ID)
		if !ok {
			fmt.Printf("  %-6s %-12s %12d cycles  (new workload, excluded from geomean)\n", e.ID, e.Suite, e.Cycles)
			continue
		}
		if o.Result != e.Result {
			resultDrift = append(resultDrift, fmt.Sprintf("%s: %q -> %q", e.ID, o.Result, e.Result))
		}
		if o.Cycles <= 0 || e.Cycles <= 0 {
			continue
		}
		ratio := float64(e.Cycles) / float64(o.Cycles)
		fmt.Printf("  %-6s %-12s %12d -> %12d  %+7.2f%%\n", e.ID, e.Suite, o.Cycles, e.Cycles, (ratio-1)*100)
		acc := suites[e.Suite]
		if acc == nil {
			acc = &suiteAcc{}
			suites[e.Suite] = acc
			suiteOrder = append(suiteOrder, e.Suite)
		}
		acc.logSum += math.Log(ratio)
		acc.n++
		total.logSum += math.Log(ratio)
		total.n++
	}
	removed := make([]string, 0, len(oldByID))
	for id := range oldByID {
		removed = append(removed, id)
	}
	sort.Strings(removed)
	for _, id := range removed {
		fmt.Printf("  %-6s (in baseline only, excluded from geomean)\n", id)
	}

	fmt.Println()
	for _, s := range suiteOrder {
		acc := suites[s]
		fmt.Printf("  %-12s geomean %+7.2f%%  (%d workloads)\n", s, (math.Exp(acc.logSum/float64(acc.n))-1)*100, acc.n)
	}
	if total.n == 0 {
		return fmt.Errorf("no common workloads between %s and the current suite", oldPath)
	}
	overall := math.Exp(total.logSum/float64(total.n)) - 1
	fmt.Printf("  %-12s geomean %+7.2f%%  (%d workloads)\n", "overall", overall*100, total.n)

	if len(resultDrift) > 0 {
		for _, d := range resultDrift {
			fmt.Fprintf(os.Stderr, "result drift: %s\n", d)
		}
		return fmt.Errorf("%d workload result(s) drifted from the baseline", len(resultDrift))
	}
	if overall*100 > maxRegress {
		return fmt.Errorf("overall cycle geomean regressed %.2f%% (limit %.2f%%)", overall*100, maxRegress)
	}
	return nil
}
