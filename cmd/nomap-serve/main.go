// nomap-serve replays a mixed, repeat-heavy workload trace through the
// multi-isolate serving layer and reports throughput, latency percentiles,
// code-cache effectiveness, and warm-start coverage. It is both the serving
// layer's demonstration driver and its smoke check: with -verify (default)
// every pooled response is compared against a dedicated cold isolate, and
// with -min-hit-rate the process exits nonzero when the shared code cache
// underperforms — the assertion CI runs. With -chaos a deterministic fault
// plan is injected (isolate panics, compile failures, wedged isolates,
// corrupt snapshots); failures are then expected, reported per taxonomy
// class, and the run asserts every scheduled fault fired and the fleet
// converged back to healthy — the chaos soak CI runs.
package main

import (
	"flag"
	"fmt"
	"nomap/internal/stats"
	"os"
	"strings"
	"time"

	"nomap/internal/chaos"
	"nomap/internal/codecache"
	"nomap/internal/isolate"
	"nomap/internal/pool"
	"nomap/internal/profile"
	"nomap/internal/value"
	"nomap/internal/vm"
	"nomap/internal/workloads"
)

func main() {
	var (
		workers    = flag.Int("workers", 4, "pool worker isolates")
		queue      = flag.Int("queue", 0, "queue depth (0 = 4x workers)")
		repeat     = flag.Int("repeat", 6, "times each program is requested")
		calls      = flag.Int("calls", 12, "run() invocations per request")
		archName   = flag.String("arch", "NoMap", "architecture configuration")
		programs   = flag.String("programs", "", "comma-separated workload IDs (default: serving mix)")
		timeout    = flag.Duration("timeout", 0, "per-request deadline (0 = none)")
		minHitRate = flag.Float64("min-hit-rate", 0, "exit nonzero if code-cache hit rate falls below this")
		verify     = flag.Bool("verify", true, "check every response against a dedicated cold isolate")
		noCache    = flag.Bool("no-cache", false, "disable the shared code cache")
		noSnap     = flag.Bool("no-snapshots", false, "disable warm-start snapshots")
		chaosSpec  = flag.String("chaos", "", `deterministic fault plan, e.g. "panic@3,compile-fail@1,slow-isolate@5" (injected failures are expected and reported per class)`)

		shards       = flag.Int("shards", 0, "code-cache shards (0 = default; 1 = unsharded A/B configuration)")
		coalesce     = flag.Bool("coalesce", false, "coalesce concurrent cold starts of one key behind a single leader")
		asyncCompile = flag.Bool("async-compile", false, "move tier-up compilation off the request path onto the background compile queue")
		slo          = flag.Duration("slo", 0, "latency SLO for compile-queue admission control (0 = no admission gating)")

		loadgenMode = flag.Bool("loadgen", false, "load-generator mode: seeded open-loop (Poisson) arrivals on the virtual-time simulator")
		qps         = flag.Int64("qps", 10000, "loadgen arrival rate (requests per virtual second)")
		requests    = flag.Int("requests", 10000, "loadgen arrivals to generate")
		seed        = flag.Uint64("seed", 1, "loadgen arrival-process seed")
		benchOut    = flag.String("bench", "", "measure the serving benchmark scenarios and write BENCH_SERVE.json to this path")
		comparePath = flag.String("compare", "", "compare a fresh measurement against this committed BENCH_SERVE.json and gate on regressions")
		jsonOut     = flag.String("json", "", "with -compare: also write the fresh measurement to this path")
		maxRegress  = flag.Float64("max-regress", 2.0, "with -compare: max tolerated throughput drop / p99 rise, percent")
	)
	flag.Parse()

	arch, ok := archByName(*archName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown arch %q\n", *archName)
		os.Exit(2)
	}
	mix := servingMix(*programs)
	if len(mix) == 0 {
		fmt.Fprintln(os.Stderr, "no workloads selected")
		os.Exit(2)
	}

	cfg := vm.DefaultConfig()
	cfg.Arch = arch

	// Benchmark and load-generator modes run on the virtual-time simulator
	// (deterministic, so the committed snapshot gates CI); the trace replay
	// below exercises the real pool.
	if *benchOut != "" {
		if err := emitServeBench(*benchOut, cfg); err != nil {
			fatalf("%v", err)
		}
		return
	}
	if *comparePath != "" {
		if err := compareServe(*comparePath, *jsonOut, *maxRegress, cfg); err != nil {
			fatalf("%v", err)
		}
		return
	}
	if *loadgenMode {
		if err := runLoadgen(cfg, mix, *workers, *queue, *calls, *requests,
			*qps, *seed, *coalesce, *asyncCompile); err != nil {
			fatalf("%v", err)
		}
		return
	}

	var plan *chaos.Plan
	if *chaosSpec != "" {
		var err error
		plan, err = chaos.ParsePlan(int64(cfg.RandomSeed), *chaosSpec)
		if err != nil {
			fatalf("%v", err)
		}
	}
	p := pool.New(pool.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		VM:               cfg,
		DisableCodeCache: *noCache,
		DisableSnapshots: *noSnap,
		CacheShards:      *shards,
		Coalesce:         *coalesce,
		AsyncCompile:     *asyncCompile,
		SLO:              *slo,
		Chaos:            plan,
	})

	// Cold references, one dedicated isolate per program: the behaviour the
	// pool must reproduce byte-for-byte.
	type refRun struct {
		results []string
		output  []string
	}
	refs := make(map[string]refRun, len(mix))
	if *verify {
		for _, w := range mix {
			iso := isolate.New(cfg)
			progs := codecache.NewPrograms()
			entry, err := progs.Load(w.Source)
			if err != nil {
				fatalf("%s: %v", w.ID, err)
			}
			if err := iso.Load(entry); err != nil {
				fatalf("%s: cold load: %v", w.ID, err)
			}
			var rr refRun
			for i := 0; i < *calls; i++ {
				v, err := iso.VM().CallGlobal("run", value.Int(0))
				if err != nil {
					fatalf("%s: cold run: %v", w.ID, err)
				}
				rr.results = append(rr.results, v.ToStringValue())
			}
			rr.output = append([]string(nil), iso.VM().Output...)
			refs[w.ID] = rr
		}
	}

	// Trace: round-robin over the mix so later waves hit warm state.
	type tagged struct {
		id string
		ch <-chan pool.Response
	}
	var (
		inflight []tagged
		lat      stats.Histogram
		mismatch int
		failed   int
	)
	drainOne := func() {
		t := inflight[0]
		inflight = inflight[1:]
		resp := <-t.ch
		if resp.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "%s: [%s] %v\n", t.id, pool.Classify(resp.Err), resp.Err)
			return
		}
		lat.Record(resp.Latency.Microseconds())
		if *verify {
			ref := refs[t.id]
			if strings.Join(resp.Results, "\n") != strings.Join(ref.results, "\n") ||
				strings.Join(resp.Output, "\n") != strings.Join(ref.output, "\n") {
				mismatch++
				fmt.Fprintf(os.Stderr, "%s: pooled response diverges from cold isolate\n", t.id)
			}
		}
	}

	start := time.Now()
	total := 0
	for r := 0; r < *repeat; r++ {
		for _, w := range mix {
			req := pool.Request{Source: w.Source, Calls: *calls, Timeout: *timeout}
			for {
				ch, err := p.Submit(req)
				if err == pool.ErrQueueFull {
					// Backpressure: absorb it by completing the oldest
					// in-flight request, then retry.
					if len(inflight) == 0 {
						fatalf("%s: queue full with nothing in flight", w.ID)
					}
					drainOne()
					continue
				}
				if err != nil {
					fatalf("%s: %v", w.ID, err)
				}
				inflight = append(inflight, tagged{id: w.ID, ch: ch})
				total++
				break
			}
		}
	}
	for len(inflight) > 0 {
		drainOne()
	}
	elapsed := time.Since(start)
	p.Close()

	st := p.Stats()
	fmt.Printf("nomap-serve: %d requests (%d programs x %d repeats, %d calls each) on %d workers [%s]\n",
		total, len(mix), *repeat, *calls, *workers, arch)
	fmt.Printf("  wall time      %v  (%.1f req/s)\n", elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds())
	if lat.Count() > 0 {
		fmt.Printf("  latency        p50 %dµs  p90 %dµs  p99 %dµs  p999 %dµs  max %dµs\n",
			lat.Quantile(0.50), lat.Quantile(0.90), lat.Quantile(0.99),
			lat.Quantile(0.999), lat.Max())
	}
	fmt.Printf("  completed      %d ok, %d failed, %d rejected\n", st.Completed, st.Failed, st.Rejected)
	if st.Failed > 0 {
		var parts []string
		for _, class := range pool.Classes() {
			if n := st.FailedBy[class]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s %d", class, n))
			}
		}
		fmt.Printf("  failures       %s\n", strings.Join(parts, ", "))
	}
	if plan != nil || st.Crashes > 0 || st.Health.Degraded {
		fmt.Printf("  resilience     %d crashes contained, %d isolates replaced, %d retries, %d degrade steps, %d repromotions, %d sheds, %d snapshot rejects\n",
			st.Crashes, st.Replacements, st.Retries, st.DegradeSteps,
			st.Repromotions, st.Sheds, st.SnapshotRejects)
		fmt.Printf("  health         cap=%v ceiling=%v degraded=%v shedding=%v\n",
			st.Health.Cap, st.Health.Ceiling, st.Health.Degraded, st.Health.Shedding)
	}
	fmt.Printf("  code cache     %d hits, %d misses, %d evictions, %d bind-fails, %d uncacheable (hit rate %.1f%%)\n",
		st.Cache.Hits, st.Cache.Misses, st.Cache.Evictions, st.Cache.BindFails,
		st.Cache.Uncacheable, 100*st.Cache.HitRate())
	fmt.Printf("  snapshots      %d restores (%d stored)\n", st.Counters.SnapshotRestores, st.Snapshots.Size)
	if *coalesce {
		fmt.Printf("  coalescing     %d leads, %d follower waits\n", st.CoalesceLeads, st.CoalesceWaits)
	}
	if *asyncCompile {
		fmt.Printf("  compile queue  %d jobs (%d done, %d shed, %d down-tiered)\n",
			st.CompileJobs, st.CompileDone, st.CompileSheds, st.CompileDownTiers)
	}
	fmt.Printf("  ftl compiles   %s\n", ftlCompileSummary(p))

	if mismatch > 0 {
		fatalf("%d pooled responses diverged from cold isolates", mismatch)
	}
	if plan != nil {
		// Under chaos, injected failures are the point; the assertions are
		// that every scheduled fault fired and the fleet converged back.
		if !plan.Exhausted() {
			fatalf("chaos plan %v did not fire every scheduled fault", plan)
		}
		if st.Health.Degraded || st.Health.Shedding {
			fatalf("fleet did not recover from chaos: cap=%v ceiling=%v shedding=%v",
				st.Health.Cap, st.Health.Ceiling, st.Health.Shedding)
		}
	} else if failed > 0 {
		fatalf("%d requests failed", failed)
	}
	if *minHitRate > 0 && !*noCache && st.Cache.HitRate() < *minHitRate {
		fatalf("code-cache hit rate %.3f below required %.3f", st.Cache.HitRate(), *minHitRate)
	}
}

// ftlCompileSummary reports the warm-start acceptance metric: FTL fill
// counts per (function, arch) group, flagging any group compiled more than
// once.
func ftlCompileSummary(p *pool.Pool) string {
	c := p.Cache()
	if c == nil {
		return "cache disabled"
	}
	fills := c.FillCounts()
	total, groups, worst := int64(0), 0, int64(0)
	for g, n := range fills {
		if g.Tier != profile.TierFTL {
			continue
		}
		groups++
		total += n
		if n > worst {
			worst = n
		}
	}
	return fmt.Sprintf("%d across %d (function, arch) groups (max %d per group)", total, groups, worst)
}

// servingMix selects the trace's program set: an explicit ID list, or the
// default mix of AvgS-style loop kernels plus the four adversarial
// workloads (A01-A04) that stress the abort-recovery governor.
func servingMix(ids string) []workloads.Workload {
	if ids != "" {
		var out []workloads.Workload
		for _, id := range strings.Split(ids, ",") {
			w, ok := workloads.ByID(strings.TrimSpace(id))
			if !ok {
				fatalf("unknown workload %q", id)
			}
			out = append(out, w)
		}
		return out
	}
	var out []workloads.Workload
	for _, id := range []string{"S01", "S03", "S05", "S07", "K01", "K02"} {
		if w, ok := workloads.ByID(id); ok {
			out = append(out, w)
		}
	}
	out = append(out, workloads.Adversarial()...)
	return out
}

func archByName(name string) (vm.Arch, bool) {
	for _, a := range vm.AllArchs {
		if a.String() == name {
			return a, true
		}
	}
	return 0, false
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
