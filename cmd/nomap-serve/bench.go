// Serving benchmark: deterministic throughput/tail-latency snapshots and the
// regression gate over them. Scenarios run on the virtual-time simulator in
// internal/loadgen, parameterized by per-key service costs measured from the
// real engine (MeasureKey), so BENCH_SERVE.json is bit-reproducible: CI can
// hold a 2% ceiling on throughput and p99 without cross-machine noise, and a
// self-compare is exactly +0.00%.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"nomap/internal/loadgen"
	"nomap/internal/vm"
	"nomap/internal/workloads"
)

// spinSource is the compile-dominated cold-burst workload: calls are cheap,
// but enough of them trigger optimizing tier-up, so on-path compilation is
// the bulk of a cold request's cost — the shape the background compile
// queue exists to fix.
const spinSource = `
function run(n) {
  var s = 0;
  for (var i = 0; i < 4; i++) {
    s = (s + i * n) | 0;
  }
  return s;
}
`

// steadyIDs are the warm-traffic keys for the steady scenario, drawn from
// the serving mix.
var steadyIDs = []string{"S01", "S03", "K01"}

const benchCalls = 12 // run() invocations per request, matching the replay trace

type serveScenario struct {
	Name     string `json:"name"`
	Workers  int    `json:"workers"`
	QPS      int64  `json:"qps"`
	Requests int    `json:"requests"`
	Seed     uint64 `json:"seed"`
	Async    bool   `json:"async,omitempty"`
	Coalesce bool   `json:"coalesce,omitempty"`
	ColdKeys bool   `json:"cold_keys,omitempty"`
	// Keys pins the measured per-key cost profiles (and their results, for
	// drift detection) alongside the scenario outcome.
	Keys   []loadgen.KeyProfile `json:"keys"`
	Result loadgen.SimResult    `json:"result"`
}

// serveBenchFile is the BENCH_SERVE.json schema.
type serveBenchFile struct {
	Schema    int             `json:"schema"`
	Arch      string          `json:"arch"`
	Scenarios []serveScenario `json:"scenarios"`
}

// scenarioQPS derives the arrival rate from the measured service cost so the
// scenario always runs at ~70% utilization of the serving workers: a faster
// engine is offered proportionally more load, and the snapshot's throughput
// number tracks engine capacity rather than an arbitrary constant.
func scenarioQPS(workers int, serviceCycles int64) int64 {
	q := int64(workers) * (loadgen.CyclesPerSecond * 7 / 10) / serviceCycles
	if q < 1 {
		q = 1
	}
	return q
}

// measureServeBench measures every scenario with the current engine.
func measureServeBench(cfg vm.Config) (serveBenchFile, error) {
	out := serveBenchFile{Schema: 1, Arch: cfg.Arch.String()}

	var steadyKeys []loadgen.KeyProfile
	var warmSum int64
	for _, id := range steadyIDs {
		w, ok := workloads.ByID(id)
		if !ok {
			return out, fmt.Errorf("serve bench: unknown workload %q", id)
		}
		kp, err := loadgen.MeasureKey(id, w.Source, benchCalls, 0, cfg)
		if err != nil {
			return out, err
		}
		steadyKeys = append(steadyKeys, kp)
		warmSum += kp.WarmCycles
	}
	spin, err := loadgen.MeasureKey("spin", spinSource, 64, 3, cfg)
	if err != nil {
		return out, err
	}

	const workers = 8
	scens := []serveScenario{
		{
			// Warm-heavy steady traffic: repeat requests over a small key
			// set, coalescing the initial cold stampede.
			Name: "steady", Workers: workers, Requests: 10000, Seed: 1,
			Coalesce: true,
			QPS:      scenarioQPS(workers, warmSum/int64(len(steadyKeys))),
			Keys:     steadyKeys,
		},
		{
			// Cold-start burst, tier-up compiles on the request path.
			Name: "coldburst-sync", Workers: workers, Requests: 3000, Seed: 2,
			ColdKeys: true,
			QPS:      scenarioQPS(workers, spin.ColdCycles+spin.CompileCycles),
			Keys:     []loadgen.KeyProfile{spin},
		},
		{
			// Same burst at the same offered load, compiles deferred to the
			// background queue: the A/B that justifies the compile queue.
			Name: "coldburst-async", Workers: workers, Requests: 3000, Seed: 2,
			ColdKeys: true, Async: true,
			QPS:  scenarioQPS(workers, spin.ColdCycles+spin.CompileCycles),
			Keys: []loadgen.KeyProfile{spin},
		},
	}
	for i := range scens {
		s := &scens[i]
		s.Result = loadgen.Run(loadgen.SimConfig{
			Workers:        s.Workers,
			QueueDepth:     256,
			QPS:            s.QPS,
			Requests:       s.Requests,
			Seed:           s.Seed,
			Keys:           s.Keys,
			ColdKeys:       s.ColdKeys,
			Async:          s.Async,
			CompileWorkers: 2,
			Coalesce:       s.Coalesce,
		})
	}
	out.Scenarios = scens
	return out, nil
}

func printScenario(s serveScenario) {
	fmt.Printf("  %-16s %8.0f qps  p50 %6dµs  p99 %6dµs  p999 %6dµs  max %6dµs  (%d ok, %d rejected, %d compile jobs)\n",
		s.Name, s.Result.ThroughputQPS, s.Result.P50, s.Result.P99, s.Result.P999,
		s.Result.MaxL, s.Result.Completed, s.Result.Rejected, s.Result.CompileJobs)
}

// emitServeBench measures all scenarios and writes the snapshot to path.
func emitServeBench(path string, cfg vm.Config) error {
	out, err := measureServeBench(cfg)
	if err != nil {
		return err
	}
	for _, s := range out.Scenarios {
		printScenario(s)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compareServe re-measures the scenarios and diffs them against a committed
// baseline. Gates: a workload result pinned in any key profile must not
// drift (a throughput win can never be bought with a wrong answer), and per
// scenario the throughput must not drop — nor the p99 rise — by more than
// maxRegress percent. p999 and max are reported but not gated: at
// microsecond scale one histogram bucket exceeds any reasonable ceiling.
func compareServe(oldPath, jsonOut string, maxRegress float64, cfg vm.Config) error {
	data, err := os.ReadFile(oldPath)
	if err != nil {
		return err
	}
	var old serveBenchFile
	if err := json.Unmarshal(data, &old); err != nil {
		return fmt.Errorf("%s: %w", oldPath, err)
	}
	cur, err := measureServeBench(cfg)
	if err != nil {
		return err
	}
	if jsonOut != "" {
		out, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(out, '\n'), 0o644); err != nil {
			return err
		}
	}

	oldByName := make(map[string]serveScenario, len(old.Scenarios))
	for _, s := range old.Scenarios {
		oldByName[s.Name] = s
	}

	var drift, gate []string
	pct := func(cur, old float64) float64 { return (cur/old - 1) * 100 }
	fmt.Printf("serving deltas vs %s (throughput: negative = slower; latency: positive = worse):\n", oldPath)
	for _, s := range cur.Scenarios {
		o, ok := oldByName[s.Name]
		if !ok {
			fmt.Printf("  %-16s (new scenario, not gated)\n", s.Name)
			continue
		}
		oldKeys := make(map[string]string, len(o.Keys))
		for _, k := range o.Keys {
			oldKeys[k.Name] = k.Result
		}
		for _, k := range s.Keys {
			if r, ok := oldKeys[k.Name]; ok && r != k.Result {
				drift = append(drift, fmt.Sprintf("%s/%s: %q -> %q", s.Name, k.Name, r, k.Result))
			}
		}
		dTput := pct(s.Result.ThroughputQPS, o.Result.ThroughputQPS)
		dP99 := pct(float64(s.Result.P99), float64(o.Result.P99))
		dP999 := pct(float64(s.Result.P999), float64(o.Result.P999))
		fmt.Printf("  %-16s throughput %+7.2f%%  p99 %+7.2f%%  p999 %+7.2f%%\n", s.Name, dTput, dP99, dP999)
		if -dTput > maxRegress {
			gate = append(gate, fmt.Sprintf("%s: throughput regressed %.2f%% (limit %.2f%%)", s.Name, -dTput, maxRegress))
		}
		if dP99 > maxRegress {
			gate = append(gate, fmt.Sprintf("%s: p99 regressed %.2f%% (limit %.2f%%)", s.Name, dP99, maxRegress))
		}
	}

	if len(drift) > 0 {
		for _, d := range drift {
			fmt.Fprintf(os.Stderr, "result drift: %s\n", d)
		}
		return fmt.Errorf("%d workload result(s) drifted from the baseline", len(drift))
	}
	if len(gate) > 0 {
		for _, g := range gate {
			fmt.Fprintln(os.Stderr, g)
		}
		return fmt.Errorf("%d serving metric(s) regressed past the %.2f%% ceiling", len(gate), maxRegress)
	}
	return nil
}

// runLoadgen is the exploratory load-generator mode: measure the selected
// workloads, then simulate the requested open-loop arrival rate and report
// throughput and tail latency.
func runLoadgen(cfg vm.Config, mix []workloads.Workload, workers, queueDepth, calls, requests int,
	qps int64, seed uint64, coalesce, async bool) error {
	var keys []loadgen.KeyProfile
	for _, w := range mix {
		kp, err := loadgen.MeasureKey(w.ID, w.Source, calls, 0, cfg)
		if err != nil {
			return err
		}
		keys = append(keys, kp)
		fmt.Printf("  key %-6s cold %9d cy  warm %9d cy  baseline %9d cy  compile %9d cy\n",
			kp.Name, kp.ColdCycles, kp.WarmCycles, kp.BaselineCycles, kp.CompileCycles)
	}
	res := loadgen.Run(loadgen.SimConfig{
		Workers:        workers,
		QueueDepth:     queueDepth,
		QPS:            qps,
		Requests:       requests,
		Seed:           seed,
		Keys:           keys,
		Async:          async,
		CompileWorkers: 2,
		Coalesce:       coalesce,
	})
	fmt.Printf("nomap-serve loadgen: %d arrivals at %d qps on %d workers [%s] (seed %d, coalesce=%v, async=%v)\n",
		requests, qps, workers, cfg.Arch, seed, coalesce, async)
	fmt.Printf("  throughput     %.0f req/s (virtual time)\n", res.ThroughputQPS)
	fmt.Printf("  completed      %d ok, %d rejected\n", res.Completed, res.Rejected)
	fmt.Printf("  latency        p50 %dµs  p99 %dµs  p999 %dµs  max %dµs\n", res.P50, res.P99, res.P999, res.MaxL)
	if async {
		fmt.Printf("  compile queue  %d background rehearsals\n", res.CompileJobs)
	}
	return nil
}
