// nomap-osr is the CI smoke check for mid-execution tier-up: a
// single-invocation hot loop must reach optimized code through OSR entry
// (OSREntries > 0 under Arch=NoMap with the full tier stack), must record
// zero OSR entries when tier-up is capped at Baseline, and both runs must
// produce the interpreter's exact result. Exits non-zero on any violation.
//
// Usage:
//
//	nomap-osr                       # singlecall workload
//	nomap-osr -workload singlecall
package main

import (
	"flag"
	"fmt"
	"os"

	"nomap/internal/jit"
	"nomap/internal/profile"
	"nomap/internal/vm"
	"nomap/internal/workloads"
)

func main() {
	id := flag.String("workload", "singlecall", "workload ID (single-invocation hot loop)")
	flag.Parse()

	w, ok := workloads.ByID(*id)
	if !ok {
		fail("unknown workload %q", *id)
	}

	run := func(arch vm.Arch, maxTier profile.Tier) (string, int64, int64) {
		cfg := vm.DefaultConfig()
		cfg.Arch = arch
		cfg.MaxTier = maxTier
		v := vm.New(cfg)
		jit.Attach(v)
		if _, err := v.Run(w.Source); err != nil {
			fail("%s setup: %v", w.ID, err)
		}
		r, err := v.CallGlobal("run")
		if err != nil {
			fail("%s run: %v", w.ID, err)
		}
		c := v.Counters()
		return r.ToStringValue(), c.OSREntries, c.TotalCycles()
	}

	interpRes, _, interpCycles := run(vm.ArchBase, profile.TierInterp)
	nomapRes, nomapOSR, nomapCycles := run(vm.ArchNoMap, profile.TierFTL)
	baseRes, baseOSR, _ := run(vm.ArchNoMap, profile.TierBaseline)

	if nomapRes != interpRes {
		fail("%s: NoMap result %q diverges from interpreter %q", w.ID, nomapRes, interpRes)
	}
	if baseRes != interpRes {
		fail("%s: Baseline-capped result %q diverges from interpreter %q", w.ID, baseRes, interpRes)
	}
	if nomapOSR == 0 {
		fail("%s: single call never OSR-entered optimized code under NoMap (OSREntries = 0)", w.ID)
	}
	if baseOSR != 0 {
		fail("%s: Baseline-capped run recorded %d OSR entries, want 0", w.ID, baseOSR)
	}
	fmt.Printf("%s: %d OSR entries in one call, %d cycles vs %d interpreted (%.1fx), results identical\n",
		w.ID, nomapOSR, nomapCycles, interpCycles, float64(interpCycles)/float64(nomapCycles))
}

func fail(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "nomap-osr: "+format+"\n", a...)
	os.Exit(1)
}
