// nomap-profile characterizes the SMP-guarding checks in FTL code (the
// paper's §III analysis): it warms a workload or source file to steady
// state under the Base configuration and reports checks per 100 dynamic FTL
// instructions by class, optionally dumping the optimized IR of the hot
// functions under each architecture so the transformation is visible.
//
// Usage:
//
//	nomap-profile -workload S18
//	nomap-profile -workload S13 -dump-ir -arch nomap
//	nomap-profile program.js
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nomap/internal/harness"
	"nomap/internal/jit"
	"nomap/internal/profile"
	"nomap/internal/stats"
	"nomap/internal/vm"
	"nomap/internal/workloads"
)

func main() {
	workloadID := flag.String("workload", "", "built-in workload ID (e.g. S18)")
	dumpIR := flag.Bool("dump-ir", false, "dump the optimized IR of hot functions")
	archName := flag.String("arch", "base", "architecture for -dump-ir: base|nomap_s|nomap_b|nomap|nomap_bc|nomap_rtm")
	flag.Parse()

	arch := map[string]vm.Arch{
		"base": vm.ArchBase, "nomap_s": vm.ArchNoMapS, "nomap_b": vm.ArchNoMapB,
		"nomap": vm.ArchNoMap, "nomap_bc": vm.ArchNoMapBC, "nomap_rtm": vm.ArchNoMapRTM,
	}[strings.ToLower(*archName)]

	var src string
	var label string
	if *workloadID != "" {
		w, ok := workloads.ByID(*workloadID)
		if !ok {
			fmt.Fprintf(os.Stderr, "nomap-profile: unknown workload %q\n", *workloadID)
			os.Exit(1)
		}
		src, label = w.Source, w.ID+" "+w.Name
	} else if flag.NArg() == 1 {
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "nomap-profile: %v\n", err)
			os.Exit(1)
		}
		src, label = string(data), flag.Arg(0)
	} else {
		fmt.Fprintln(os.Stderr, "usage: nomap-profile [-dump-ir] [-arch X] (-workload ID | program.js)")
		os.Exit(2)
	}

	// Steady-state check profile under Base (Figure 3 methodology).
	w := workloads.Workload{ID: "custom", Name: label, Source: src}
	m, err := harness.Run(w, vm.ArchBase, profile.TierFTL, harness.DefaultConfig())
	if err != nil {
		fmt.Fprintf(os.Stderr, "nomap-profile: %v\n", err)
		os.Exit(1)
	}
	ftl := float64(m.FTLInstr())
	if ftl == 0 {
		ftl = 1
	}
	c := m.Counters
	fmt.Printf("%s: steady-state FTL check profile (Base)\n", label)
	fmt.Printf("  FTL instructions: %d (of %d total)\n", m.FTLInstr(), c.TotalInstr())
	for _, cl := range []stats.CheckClass{stats.CheckBounds, stats.CheckOverflow, stats.CheckType, stats.CheckProperty, stats.CheckOther} {
		fmt.Printf("  %-9s %8d checks  %6.2f per 100 FTL instructions\n",
			cl.String()+":", c.Checks[cl], 100*float64(c.Checks[cl])/ftl)
	}
	fmt.Printf("  %-9s %8d checks  %6.2f per 100 FTL instructions (one per %.1f)\n",
		"total:", c.TotalChecks(), 100*float64(c.TotalChecks())/ftl, ftl/float64(c.TotalChecks()+1))

	if *dumpIR {
		cfg := vm.DefaultConfig()
		cfg.Arch = arch
		cfg.Policy = profile.Policy{BaselineThreshold: 2, DFGThreshold: 8, FTLThreshold: 40, MaxDeopts: 16}
		v := vm.New(cfg)
		backend := jit.Attach(v)
		if _, err := v.Run(src); err != nil {
			fmt.Fprintf(os.Stderr, "nomap-profile: %v\n", err)
			os.Exit(1)
		}
		for i := 0; i < 80; i++ {
			if _, err := v.CallGlobal("run"); err != nil {
				fmt.Fprintf(os.Stderr, "nomap-profile: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Printf("\noptimized IR under %v:\n\n", arch)
		for _, f := range backend.CompiledFunctions() {
			fmt.Println(f.String())
		}
	}
}
