// nomap-oracle runs the deterministic fault-injection oracle: it enumerates
// every injectable site of a program (speculation checks, transaction
// begin/commit/tile points, transactional write lines), re-runs the program
// forcing an abort or deopt at each one, and checks that observable behaviour
// matches the pure-interpreter reference under every architecture
// configuration swept.
//
// Usage:
//
//	nomap-oracle -workload X01,X03,X06
//	nomap-oracle -gen 50 -seed 1
//	nomap-oracle -workload S01 -arch nomap,nomap_rtm -capacity -1 -v
//
// The exit status is nonzero if any sweep detects a divergence, a counter
// invariant violation, an ir.Verify failure, or a missed injection.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nomap/internal/machine"
	"nomap/internal/oracle"
	"nomap/internal/profile"
	"nomap/internal/vm"
	"nomap/internal/workloads"
)

var archNames = map[string]vm.Arch{
	"base":      vm.ArchBase,
	"nomap_s":   vm.ArchNoMapS,
	"nomap_b":   vm.ArchNoMapB,
	"nomap":     vm.ArchNoMap,
	"nomap_bc":  vm.ArchNoMapBC,
	"nomap_rtm": vm.ArchNoMapRTM,
}

var tierNames = map[string]profile.Tier{
	"interp":   profile.TierInterp,
	"baseline": profile.TierBaseline,
	"dfg":      profile.TierDFG,
	"ftl":      profile.TierFTL,
}

func main() {
	workloadIDs := flag.String("workload", "", "comma-separated workload IDs to sweep (e.g. X01,X03)")
	gen := flag.Int("gen", 0, "number of generated programs to sweep")
	archList := flag.String("arch", "all", "comma-separated architectures, or \"all\"")
	tierName := flag.String("tier", "ftl", "maximum tier: interp|baseline|dfg|ftl")
	capacity := flag.Int("capacity", 3, "capacity-abort injection points per config (0 none, -1 every write line)")
	random := flag.Int("random", 8, "random-schedule injection trials per config")
	seed := flag.Int64("seed", 1, "seed for generated programs and random-schedule mode")
	calls := flag.Int("calls", 60, "run() invocations per observation")
	verbose := flag.Bool("v", false, "print per-configuration site tables")
	flag.Parse()

	cfg := oracle.Config{
		MaxTier:        mustTier(*tierName),
		CapacityPoints: *capacity,
		RandomTrials:   *random,
		Seed:           *seed,
	}
	if *archList != "all" {
		for _, name := range strings.Split(*archList, ",") {
			arch, ok := archNames[strings.ToLower(strings.TrimSpace(name))]
			if !ok {
				fatalf("unknown architecture %q", name)
			}
			cfg.Archs = append(cfg.Archs, arch)
		}
	}

	var programs []oracle.Program
	if *workloadIDs != "" {
		for _, id := range strings.Split(*workloadIDs, ",") {
			id = strings.TrimSpace(id)
			w, ok := workloads.ByID(id)
			if !ok {
				fatalf("unknown workload %q", id)
			}
			programs = append(programs, oracle.Program{
				Name:  fmt.Sprintf("%s (%s)", w.ID, w.Name),
				Setup: w.Source,
				Calls: *calls,
			})
		}
	}
	for i := 0; i < *gen; i++ {
		g := oracle.Generate(*seed + int64(i))
		programs = append(programs, g.Program(*calls, 3, 16))
	}
	if len(programs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: nomap-oracle -workload IDs and/or -gen N [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	failed := false
	for _, p := range programs {
		rep, err := oracle.Sweep(p, cfg)
		if err != nil {
			fatalf("%v", err)
		}
		status := "ok"
		if !rep.OK() {
			status = fmt.Sprintf("FAIL (%d)", len(rep.Failures))
			failed = true
		}
		fmt.Printf("%-28s %-9s sites=%-4d runs=%-5d injected-aborts=%d\n",
			rep.Program, status, rep.TotalSites(), rep.TotalRuns(), rep.TotalInjectedAborts())
		if *verbose {
			for _, ar := range rep.Archs {
				fmt.Printf("  %-10v sites=%-4d write-lines=%-4d runs=%-5d aborts=%-5d deopts=%d\n",
					ar.Arch, len(ar.Sites), ar.WriteLines, ar.Runs, ar.InjectedAborts, ar.InjectedDeopts)
				kinds := map[machine.SiteKind]int{}
				for _, s := range ar.Sites {
					kinds[s.Key.Kind]++
				}
				for _, kind := range []machine.SiteKind{machine.SiteCheck,
					machine.SiteTxBegin, machine.SiteTxCommit, machine.SiteTxTile} {
					if kinds[kind] > 0 {
						fmt.Printf("    %v: %d\n", kind, kinds[kind])
					}
				}
			}
		}
		for _, f := range rep.Failures {
			fmt.Printf("  %s\n", f)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func mustTier(name string) profile.Tier {
	t, ok := tierNames[strings.ToLower(name)]
	if !ok {
		fatalf("unknown tier %q", name)
	}
	return t
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "nomap-oracle: "+format+"\n", args...)
	os.Exit(1)
}
