// nomap-oracle runs the deterministic fault-injection oracle: it enumerates
// every injectable site of a program (speculation checks, transaction
// begin/commit/tile points, transactional write lines), re-runs the program
// forcing an abort or deopt at each one, and checks that observable behaviour
// matches the pure-interpreter reference under every architecture
// configuration swept.
//
// Usage:
//
//	nomap-oracle -workload X01,X03,X06
//	nomap-oracle -gen 50 -seed 1
//	nomap-oracle -workload S01 -arch nomap,nomap_rtm -capacity -1 -v
//	nomap-oracle -contention all -schedules 16
//
// With -contention, the schedule-sweep oracle runs instead: the named
// shared-heap workloads (T01..T04, or "all") execute under seeded thread
// interleavings with conflict and capacity aborts forced at swept shared
// accesses, and every run's final shared-heap state is diffed against the
// single-threaded reference.
//
// The exit status is nonzero if any sweep detects a divergence, a counter
// invariant violation, an ir.Verify failure, or a missed injection.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nomap/internal/machine"
	"nomap/internal/oracle"
	"nomap/internal/profile"
	"nomap/internal/vm"
	"nomap/internal/workloads"
)

var archNames = map[string]vm.Arch{
	"base":      vm.ArchBase,
	"nomap_s":   vm.ArchNoMapS,
	"nomap_b":   vm.ArchNoMapB,
	"nomap":     vm.ArchNoMap,
	"nomap_bc":  vm.ArchNoMapBC,
	"nomap_rtm": vm.ArchNoMapRTM,
}

var tierNames = map[string]profile.Tier{
	"interp":   profile.TierInterp,
	"baseline": profile.TierBaseline,
	"dfg":      profile.TierDFG,
	"ftl":      profile.TierFTL,
}

func main() {
	workloadIDs := flag.String("workload", "", "comma-separated workload IDs to sweep (e.g. X01,X03)")
	gen := flag.Int("gen", 0, "number of generated programs to sweep")
	archList := flag.String("arch", "all", "comma-separated architectures, or \"all\"")
	tierName := flag.String("tier", "ftl", "maximum tier: interp|baseline|dfg|ftl")
	capacity := flag.Int("capacity", 3, "capacity-abort injection points per config (0 none, -1 every write line)")
	random := flag.Int("random", 8, "random-schedule injection trials per config")
	seed := flag.Int64("seed", 1, "seed for generated programs and random-schedule mode")
	calls := flag.Int("calls", 60, "run() invocations per observation")
	contention := flag.String("contention", "", "comma-separated contention workload IDs (T01..T04) or \"all\" to schedule-sweep")
	schedules := flag.Int("schedules", 8, "seeded thread interleavings per config in the schedule sweep")
	verbose := flag.Bool("v", false, "print per-configuration site tables")
	flag.Parse()

	cfg := oracle.Config{
		MaxTier:        mustTier(*tierName),
		CapacityPoints: *capacity,
		RandomTrials:   *random,
		Seed:           *seed,
	}
	if *archList != "all" {
		for _, name := range strings.Split(*archList, ",") {
			arch, ok := archNames[strings.ToLower(strings.TrimSpace(name))]
			if !ok {
				fatalf("unknown architecture %q", name)
			}
			cfg.Archs = append(cfg.Archs, arch)
		}
	}

	if *contention != "" {
		os.Exit(runScheduleSweep(*contention, cfg.Archs, *schedules, *capacity, *seed, *verbose))
	}

	var programs []oracle.Program
	if *workloadIDs != "" {
		for _, id := range strings.Split(*workloadIDs, ",") {
			id = strings.TrimSpace(id)
			w, ok := workloads.ByID(id)
			if !ok {
				fatalf("unknown workload %q", id)
			}
			programs = append(programs, oracle.Program{
				Name:  fmt.Sprintf("%s (%s)", w.ID, w.Name),
				Setup: w.Source,
				Calls: *calls,
			})
		}
	}
	for i := 0; i < *gen; i++ {
		g := oracle.Generate(*seed + int64(i))
		programs = append(programs, g.Program(*calls, 3, 16))
	}
	if len(programs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: nomap-oracle -workload IDs and/or -gen N [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	failed := false
	for _, p := range programs {
		rep, err := oracle.Sweep(p, cfg)
		if err != nil {
			fatalf("%v", err)
		}
		status := "ok"
		if !rep.OK() {
			status = fmt.Sprintf("FAIL (%d)", len(rep.Failures))
			failed = true
		}
		fmt.Printf("%-28s %-9s sites=%-4d runs=%-5d injected-aborts=%d\n",
			rep.Program, status, rep.TotalSites(), rep.TotalRuns(), rep.TotalInjectedAborts())
		if *verbose {
			for _, ar := range rep.Archs {
				fmt.Printf("  %-10v sites=%-4d write-lines=%-4d runs=%-5d aborts=%-5d deopts=%d\n",
					ar.Arch, len(ar.Sites), ar.WriteLines, ar.Runs, ar.InjectedAborts, ar.InjectedDeopts)
				kinds := map[machine.SiteKind]int{}
				for _, s := range ar.Sites {
					kinds[s.Key.Kind]++
				}
				for _, kind := range []machine.SiteKind{machine.SiteCheck,
					machine.SiteTxBegin, machine.SiteTxCommit, machine.SiteTxTile} {
					if kinds[kind] > 0 {
						fmt.Printf("    %v: %d\n", kind, kinds[kind])
					}
				}
			}
		}
		for _, f := range rep.Failures {
			fmt.Printf("  %s\n", f)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runScheduleSweep drives the shared-heap schedule-sweep oracle over the
// selected contention workloads and returns the process exit code.
func runScheduleSweep(ids string, archs []vm.Arch, schedules, capacity int, seed int64, verbose bool) int {
	var wls []*machine.SharedWorkload
	if strings.EqualFold(ids, "all") {
		wls = workloads.Contention()
	} else {
		for _, id := range strings.Split(ids, ",") {
			id = strings.TrimSpace(id)
			wl, ok := workloads.ContentionByID(id)
			if !ok {
				fatalf("unknown contention workload %q", id)
			}
			wls = append(wls, wl)
		}
	}

	scfg := oracle.DefaultScheduleConfig()
	if len(archs) > 0 {
		scfg.Archs = archs
	}
	scfg.Schedules = schedules
	scfg.CapacityPoints = capacity
	scfg.Seed = seed

	code := 0
	for _, wl := range wls {
		rep, err := oracle.ScheduleSweep(wl, scfg)
		if err != nil {
			fatalf("%v", err)
		}
		status := "ok"
		if !rep.OK() {
			status = fmt.Sprintf("FAIL (%d)", len(rep.Failures))
			code = 1
		}
		var sites int
		var conflicts, fallbacks int64
		for _, ar := range rep.Archs {
			sites += ar.AccessSites
			conflicts += ar.ConflictAborts
			fallbacks += ar.FallbackAcquires
		}
		fmt.Printf("%-28s %-9s sites=%-4d runs=%-5d conflict-aborts=%-5d fallbacks=%d\n",
			wl.Name, status, sites, rep.TotalRuns(), conflicts, fallbacks)
		if verbose {
			for _, ar := range rep.Archs {
				fmt.Printf("  %-10v access-sites=%-4d capacity-sites=%-4d runs=%-4d conflict-aborts=%-5d fallbacks=%d\n",
					ar.Arch, ar.AccessSites, ar.CapacitySites, ar.Runs, ar.ConflictAborts, ar.FallbackAcquires)
			}
		}
		for _, f := range rep.Failures {
			fmt.Printf("  %s\n", f)
		}
	}
	return code
}

func mustTier(name string) profile.Tier {
	t, ok := tierNames[strings.ToLower(name)]
	if !ok {
		fatalf("unknown tier %q", name)
	}
	return t
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "nomap-oracle: "+format+"\n", args...)
	os.Exit(1)
}
